"""Tests for the Table II capability matrix."""

import pytest

from repro.baselines.capabilities import TABLE_II, capability, max_len_supported
from repro.core.decimal.context import DecimalSpec
from repro.errors import CapabilityError


class TestTableII:
    def test_all_paper_systems_present(self):
        expected = {
            "PostgreSQL", "YugabyteDB", "H2", "PolarDB", "Greenplum",
            "CockroachDB", "Vertica", "SparkSQL", "PrestoDB", "SQL Server",
            "HEAVY.AI", "MonetDB", "RateupDB", "Hive", "Oracle", "MySQL",
            "Google Spanner", "MongoDB",
        }
        assert expected <= set(TABLE_II)

    def test_paper_limits(self):
        assert capability("PostgreSQL").max_precision == 147_455
        assert capability("PostgreSQL").max_scale == 16_383
        assert capability("HEAVY.AI").max_precision == 18
        assert capability("MySQL").max_precision == 65
        assert capability("MySQL").max_scale == 30
        assert capability("CockroachDB").max_precision is None
        assert capability("RateupDB").max_precision == 36

    def test_unknown_system(self):
        with pytest.raises(CapabilityError):
            capability("FooDB")

    def test_boundaries(self):
        heavyai = capability("HEAVY.AI")
        assert heavyai.supports(DecimalSpec(18, 2))
        assert not heavyai.supports(DecimalSpec(19, 2))

    def test_scale_boundary(self):
        spanner = capability("Google Spanner")
        assert spanner.supports(DecimalSpec(38, 9))
        assert not spanner.supports(DecimalSpec(38, 10))


class TestWordCaps:
    def test_max_len_matches_paper(self):
        """Section IV-A: HEAVY.AI stops at LEN=2; MonetDB/RateupDB at LEN=4."""
        assert max_len_supported("HEAVY.AI") == 2
        assert max_len_supported("MonetDB") == 4
        assert max_len_supported("RateupDB") == 4
        assert max_len_supported("PostgreSQL") is None
        assert max_len_supported("CockroachDB") is None
        assert max_len_supported("UltraPrecise") is None

    def test_intermediate_check_ignores_declared_precision(self):
        """RateupDB runs LEN=4 results (p=38 > declared 36): word cap binds."""
        rateup = capability("RateupDB")
        assert rateup.supports_intermediate(DecimalSpec(38, 2))
        assert not rateup.supports_intermediate(DecimalSpec(76, 2))
        assert not rateup.supports(DecimalSpec(38, 2))  # declared check fails
