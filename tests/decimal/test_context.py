"""Tests for DECIMAL(p, s) specs and the Lw/Lb storage-length tables."""

import pytest

from repro.core.decimal.context import (
    PAPER_LENS,
    PAPER_RESULT_PRECISIONS,
    DecimalSpec,
    bytes_for_precision,
    precision_for_words,
    spec_for_len,
    value_bits,
    words_for_precision,
)
from repro.errors import SchemaError


class TestWordLengths:
    def test_paper_len_table(self):
        """The paper's precision/LEN table: 18/38/76/153/307 -> 2/4/8/16/32."""
        for length, precision in PAPER_RESULT_PRECISIONS.items():
            assert words_for_precision(precision) == length

    def test_paper_precisions_fit_their_len(self):
        """Each paper precision fits its LEN with at most one digit spare.

        (The paper picks 18 for LEN=2 -- one digit below the 19-digit max --
        to match HEAVY.AI's precision cap; the others are near-maximal.)
        """
        for length, precision in PAPER_RESULT_PRECISIONS.items():
            assert precision_for_words(length) - precision <= 1

    def test_single_word_precision(self):
        """A 32-bit word holds at most 9 decimal digits (intro, section I)."""
        assert words_for_precision(9) == 1
        assert words_for_precision(10) == 2

    def test_two_word_precision(self):
        """A 64-bit (two-word) container holds at most 19 digits."""
        assert words_for_precision(19) == 2
        assert words_for_precision(20) == 3

    def test_precision_for_words_inverse(self):
        for words in (1, 2, 4, 8, 16, 32):
            precision = precision_for_words(words)
            assert words_for_precision(precision) <= words
            assert words_for_precision(precision + 1) > words

    def test_value_bits_matches_exact_log(self):
        # 10**p - 1 needs exactly ceil(p * log2 10) bits for every p >= 1.
        for precision in range(1, 200):
            assert value_bits(precision) == (10**precision - 1).bit_length()

    def test_rejects_non_positive(self):
        with pytest.raises(SchemaError):
            words_for_precision(0)
        with pytest.raises(SchemaError):
            precision_for_words(0)


class TestCompactBytes:
    def test_paper_example_decimal_10_2(self):
        """-1.23 in DECIMAL(10, 2): 9 bytes in registers, 5 bytes compact."""
        spec = DecimalSpec(10, 2)
        assert spec.words == 2  # 8 bytes of value + 1 sign byte = 9 total
        assert spec.compact_bytes == 5

    def test_compact_always_at_most_word_size(self):
        for precision in range(1, 400):
            assert bytes_for_precision(precision) <= 4 * words_for_precision(precision) + 1

    def test_sign_bit_reserved(self):
        # Lb must leave one spare bit for the sign.
        for precision in range(1, 300):
            assert 8 * bytes_for_precision(precision) >= value_bits(precision) + 1


class TestDecimalSpec:
    def test_valid_spec(self):
        spec = DecimalSpec(12, 5)
        assert spec.integer_digits == 7
        assert spec.max_unscaled == 10**12 - 1
        assert str(spec) == "DECIMAL(12, 5)"

    def test_fits(self):
        spec = DecimalSpec(4, 2)
        assert spec.fits(9999)
        assert spec.fits(-9999)
        assert not spec.fits(10000)

    def test_scale_bounds(self):
        with pytest.raises(SchemaError):
            DecimalSpec(4, 5)
        with pytest.raises(SchemaError):
            DecimalSpec(4, -1)
        with pytest.raises(SchemaError):
            DecimalSpec(0, 0)

    def test_spec_for_len(self):
        for length in PAPER_LENS:
            spec = spec_for_len(length)
            assert spec.words == length
        with pytest.raises(SchemaError):
            spec_for_len(3)

    def test_specs_are_hashable_and_equal(self):
        assert DecimalSpec(10, 2) == DecimalSpec(10, 2)
        assert len({DecimalSpec(10, 2), DecimalSpec(10, 2), DecimalSpec(10, 3)}) == 2
