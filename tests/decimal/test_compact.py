"""Tests for the compact byte-aligned representation (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import compact
from repro.core.decimal import words as w
from repro.core.decimal.context import DecimalSpec
from repro.errors import ConversionError


class TestScalarPack:
    def test_paper_example(self):
        # -1.23 in DECIMAL(10, 2) stores 123 with the sign bit, in 5 bytes.
        spec = DecimalSpec(10, 2)
        data = compact.pack(True, tuple(w.from_int(123, spec.words)), spec)
        assert len(data) == 5
        assert data[0] == 123
        assert data[-1] & compact.SIGN_BIT

    def test_roundtrip_positive(self):
        spec = DecimalSpec(10, 2)
        words = tuple(w.from_int(9876543210 % 10**10, spec.words))
        negative, out = compact.unpack(compact.pack(False, words, spec), spec)
        assert not negative and out == words

    @given(st.integers(min_value=0, max_value=10**38 - 1), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, magnitude, negative):
        spec = DecimalSpec(38, 5)
        words = tuple(w.from_int(magnitude, spec.words))
        out_negative, out_words = compact.unpack(compact.pack(negative, words, spec), spec)
        assert out_words == words
        assert out_negative == (negative and magnitude != 0)

    def test_negative_zero_normalises(self):
        spec = DecimalSpec(4, 0)
        data = compact.pack(True, tuple(w.from_int(0, spec.words)), spec)
        negative, words = compact.unpack(data, spec)
        assert not negative and w.is_zero(words)

    def test_wrong_length_raises(self):
        with pytest.raises(ConversionError):
            compact.unpack(b"\x00", DecimalSpec(10, 2))


class TestColumnPack:
    def make_column(self, values, spec):
        rows = len(values)
        negative = np.array([v < 0 for v in values])
        words = np.zeros((rows, spec.words), np.uint32)
        for row, value in enumerate(values):
            for limb, word in enumerate(w.from_int(abs(value), spec.words)):
                words[row, limb] = word
        return negative, words

    def test_roundtrip_matches_scalar(self):
        spec = DecimalSpec(18, 2)
        values = [0, 1, -1, 10**18 - 1, -(10**17), 123456789]
        negative, words = self.make_column(values, spec)
        packed = compact.pack_column(negative, words, spec)
        assert packed.shape == (len(values), spec.compact_bytes)
        for row, value in enumerate(values):
            expected = compact.pack(value < 0, tuple(words[row].tolist()), spec)
            assert packed[row].tobytes() == expected

    @given(
        st.lists(st.integers(min_value=-(10**37), max_value=10**37), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_column(self, values):
        spec = DecimalSpec(38, 11)
        negative, words = self.make_column(values, spec)
        packed = compact.pack_column(negative, words, spec)
        out_negative, out_words = compact.unpack_column(packed, spec)
        assert np.array_equal(out_words, words)
        nonzero = words.any(axis=1)
        assert np.array_equal(out_negative, negative & nonzero)

    def test_compact_is_smaller_than_word_aligned(self):
        # The whole point: Lb < 4*Lw + 1 in general.
        for precision in (10, 18, 38, 76, 153, 307):
            spec = DecimalSpec(precision, 2)
            assert spec.compact_bytes < 4 * spec.words + 1

    def test_width_mismatch_raises(self):
        spec = DecimalSpec(18, 2)
        with pytest.raises(ConversionError):
            compact.unpack_column(np.zeros((3, 1), np.uint8), spec)

    def test_padding_branch_roundtrip(self):
        # p=19 is the rare shape where Lb exceeds 4*Lw: the magnitude needs
        # all 64 register bits, so the sign bit spills into a ninth padding
        # byte (Lb=9 > 4*Lw=8) and pack_column must widen before packing.
        spec = DecimalSpec(19, 2)
        assert spec.compact_bytes > 4 * spec.words
        values = [10**19 - 1, -(10**19 - 1), 0, 1, -123456789012345678]
        negative, words = self.make_column(values, spec)
        packed = compact.pack_column(negative, words, spec)
        assert packed.shape == (len(values), spec.compact_bytes)
        out_negative, out_words = compact.unpack_column(packed, spec)
        assert np.array_equal(out_words, words)
        nonzero = words.any(axis=1)
        assert np.array_equal(out_negative, negative & nonzero)
        # The padding byte carries only the sign bit, never magnitude.
        assert not np.any(packed[:, -1] & ~np.uint8(compact.SIGN_BIT))

    def test_padding_branch_matches_scalar(self):
        spec = DecimalSpec(19, 2)
        values = [10**19 - 1, -(10**18), 42]
        negative, words = self.make_column(values, spec)
        packed = compact.pack_column(negative, words, spec)
        for row, value in enumerate(values):
            expected = compact.pack(value < 0, tuple(words[row].tolist()), spec)
            assert packed[row].tobytes() == expected

    def test_unpack_rejects_bytes_exceeding_register_array(self):
        # Forge magnitude bits in a compact byte that lies beyond the 4*Lw
        # bytes the register array can hold: unpack_column must reject the
        # column rather than silently truncate.
        spec = DecimalSpec(19, 2)  # Lb=9, Lw=2: byte 8 must stay sign-only
        data = np.zeros((2, spec.compact_bytes), dtype=np.uint8)
        data[1, -1] = 0x01  # magnitude bit in the padding byte
        with pytest.raises(ConversionError, match="exceed the register array"):
            compact.unpack_column(data, spec)
