"""Tests for Karatsuba multiplication against the schoolbook oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import words as w
from repro.core.decimal.karatsuba import karatsuba


class TestKaratsuba:
    @given(
        st.integers(min_value=0, max_value=(1 << 1024) - 1),
        st.integers(min_value=0, max_value=(1 << 1024) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_int_multiplication(self, a, b):
        product = karatsuba(w.from_int(a, 32), w.from_int(b, 32), threshold=4)
        assert w.to_int(product) == a * b

    def test_output_width(self):
        product = karatsuba(w.from_int(5, 3), w.from_int(7, 5))
        assert len(product) == 8

    def test_recursive_path_exercised(self):
        # Below-threshold inputs use schoolbook; make sure the recursive
        # splitting handles odd widths and asymmetric operands.
        a = (1 << 700) - 12345
        b = (1 << 650) + 99999
        product = karatsuba(w.from_int(a, 23), w.from_int(b, 21), threshold=2)
        assert w.to_int(product) == a * b

    def test_zero_operand(self):
        assert w.to_int(karatsuba(w.from_int(0, 16), w.from_int(12345, 16), threshold=2)) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            karatsuba([1], [1], threshold=1)

    @pytest.mark.parametrize("threshold", [2, 4, 8, 64])
    def test_threshold_does_not_change_result(self, threshold):
        a, b = 3**200, 7**110
        expected = a * b
        product = karatsuba(w.from_int(a, 10), w.from_int(b, 10), threshold=threshold)
        assert w.to_int(product) == expected
