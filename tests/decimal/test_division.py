"""Tests for the four division algorithms of sections II-B and III-C2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import words as w
from repro.core.decimal.division import (
    auto_divmod,
    binary_search_divmod,
    goldschmidt_divmod,
    native64_divmod,
    newton_raphson_divmod,
    quotient_bit_range,
    short_divmod,
)
from repro.errors import DivisionByZeroError

ALGORITHMS = [binary_search_divmod, newton_raphson_divmod, goldschmidt_divmod, auto_divmod]


def check(algorithm, a, b, width):
    quotient, remainder, stats = algorithm(w.from_int(a, width), w.from_int(b, width))
    assert (w.to_int(quotient), w.to_int(remainder)) == divmod(a, b)
    return stats


class TestQuotientRange:
    def test_paper_example(self):
        # a = 1xxxxx (6 bits), b = 1xxx (4 bits) -> quotient in [0b10, 0b111].
        lo, hi = quotient_bit_range(w.from_int(0b101010, 2), w.from_int(0b1001, 2))
        assert (lo, hi) == (0b10, 0b111)

    def test_smaller_dividend(self):
        lo, hi = quotient_bit_range(w.from_int(3, 1), w.from_int(100, 1))
        assert lo == 0

    def test_equal_magnitudes(self):
        lo, hi = quotient_bit_range(w.from_int(9, 1), w.from_int(9, 1))
        assert lo <= 1 <= hi

    def test_zero_divisor_raises(self):
        with pytest.raises(DivisionByZeroError):
            quotient_bit_range([5], [0])

    @given(
        st.integers(min_value=1, max_value=(1 << 128) - 1),
        st.integers(min_value=1, max_value=(1 << 128) - 1),
    )
    def test_range_contains_quotient(self, a, b):
        lo, hi = quotient_bit_range(w.from_int(a, 4), w.from_int(b, 4))
        assert lo <= a // b <= hi


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda f: f.__name__)
class TestAlgorithms:
    def test_simple(self, algorithm):
        check(algorithm, 100, 7, 2)

    def test_exact_division(self, algorithm):
        check(algorithm, 10**18, 10**9, 3)

    def test_dividend_smaller(self, algorithm):
        check(algorithm, 3, 10**20, 3)

    def test_equal_operands(self, algorithm):
        check(algorithm, 98765, 98765, 2)

    def test_zero_dividend(self, algorithm):
        check(algorithm, 0, 12345, 2)

    def test_divisor_one(self, algorithm):
        check(algorithm, 2**100 - 1, 1, 4)

    def test_zero_divisor_raises(self, algorithm):
        with pytest.raises(DivisionByZeroError):
            algorithm(w.from_int(10, 2), w.from_int(0, 2))

    def test_wide_operands(self, algorithm):
        check(algorithm, 10**150 + 123456789, 10**70 + 987654321, 18)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 256) - 1),
        st.integers(min_value=1, max_value=(1 << 200) - 1),
    )
    def test_matches_oracle(self, algorithm, a, b):
        check(algorithm, a, b, 9)


class TestFastPaths:
    def test_native64(self):
        quotient, remainder, stats = native64_divmod(w.from_int(10**18, 2), w.from_int(33, 2))
        assert stats.used_fast_path and stats.algorithm == "native64"
        assert (w.to_int(quotient), w.to_int(remainder)) == divmod(10**18, 33)

    def test_native64_rejects_wide(self):
        with pytest.raises(ValueError):
            native64_divmod(w.from_int(1 << 64, 3), w.from_int(3, 3))

    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=1, max_value=(1 << 32) - 1),
    )
    def test_short_division(self, a, b):
        quotient, remainder, stats = short_divmod(w.from_int(a, 4), b)
        assert stats.used_fast_path
        assert (w.to_int(quotient), remainder) == divmod(a, b)

    def test_short_rejects_wide_divisor(self):
        with pytest.raises(ValueError):
            short_divmod([1, 2], 1 << 32)

    def test_auto_dispatch_picks_fast_paths(self):
        # Both fit 64 bits -> native div (section III-C2 first test).
        _, _, stats = auto_divmod(w.from_int(10**15, 3), w.from_int(7, 3))
        assert stats.algorithm == "native64"
        # Wide dividend, one-word divisor -> short division (second test).
        _, _, stats = auto_divmod(w.from_int(10**30, 4), w.from_int(7, 4))
        assert stats.algorithm == "short"
        # Wide both -> binary search.
        _, _, stats = auto_divmod(w.from_int(10**30, 4), w.from_int(10**20, 4))
        assert stats.algorithm == "binary_search"


class TestStats:
    def test_binary_search_counts_probes(self):
        stats = check(binary_search_divmod, 10**30, 10**10 + 7, 4)
        assert stats.iterations > 0
        assert stats.multiplications >= stats.iterations

    def test_newton_converges_quadratically(self):
        # Iteration count grows ~log(bits), far below binary search's ~bits.
        stats_nr = check(newton_raphson_divmod, 10**140, 10**69 + 3, 16)
        stats_bs = check(binary_search_divmod, 10**140, 10**69 + 3, 16)
        assert stats_nr.iterations < stats_bs.iterations
