"""Tests for vectorised column arithmetic against the scalar oracle."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.decimal import vectorized as vz
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.core.decimal.vectorized import DecimalVector
from repro.errors import DivisionByZeroError, PrecisionOverflowError


def column(draw_values, spec):
    return DecimalVector.from_unscaled(draw_values, spec)


@st.composite
def vector_pairs(draw, max_precision=24, max_rows=25):
    p1 = draw(st.integers(min_value=1, max_value=max_precision))
    s1 = draw(st.integers(min_value=0, max_value=p1))
    p2 = draw(st.integers(min_value=1, max_value=max_precision))
    s2 = draw(st.integers(min_value=0, max_value=p2))
    spec_a, spec_b = DecimalSpec(p1, s1), DecimalSpec(p2, s2)
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    a_values = draw(
        st.lists(
            st.integers(min_value=-spec_a.max_unscaled, max_value=spec_a.max_unscaled),
            min_size=rows,
            max_size=rows,
        )
    )
    b_values = draw(
        st.lists(
            st.integers(min_value=-spec_b.max_unscaled, max_value=spec_b.max_unscaled),
            min_size=rows,
            max_size=rows,
        )
    )
    return column(a_values, spec_a), column(b_values, spec_b)


def scalar_rows(vector):
    return [DecimalValue.from_unscaled(u, vector.spec) for u in vector.to_unscaled()]


class TestRoundtrip:
    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_unscaled_roundtrip(self, pair):
        vector, _ = pair
        assert DecimalVector.from_unscaled(vector.to_unscaled(), vector.spec).to_unscaled() == vector.to_unscaled()

    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_compact_roundtrip(self, pair):
        vector, _ = pair
        assert DecimalVector.from_compact(vector.to_compact(), vector.spec).to_unscaled() == vector.to_unscaled()

    def test_overflow_rejected(self):
        with pytest.raises(PrecisionOverflowError):
            DecimalVector.from_unscaled([100], DecimalSpec(2, 0))

    def test_container_constructor_wraps(self):
        spec = DecimalSpec(2, 0)  # one word
        huge = (1 << 32) + 5
        vector = DecimalVector.from_unscaled_container([huge, -huge], spec)
        assert vector.to_unscaled() == [5, -5]

    def test_broadcast(self):
        spec = DecimalSpec(4, 2)
        vector = DecimalVector.broadcast(True, [123], spec, 5)
        assert vector.to_unscaled() == [-123] * 5


class TestMatchesScalar:
    @given(vector_pairs())
    @settings(max_examples=80, deadline=None)
    def test_add(self, pair):
        a, b = pair
        expected = [x + y for x, y in zip(scalar_rows(a), scalar_rows(b))]
        result = vz.add(a, b)
        assert result.spec == expected[0].spec
        assert result.to_unscaled() == [v.unscaled for v in expected]

    @given(vector_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sub(self, pair):
        a, b = pair
        expected = [x - y for x, y in zip(scalar_rows(a), scalar_rows(b))]
        assert vz.sub(a, b).to_unscaled() == [v.unscaled for v in expected]

    @given(vector_pairs(max_precision=18))
    @settings(max_examples=80, deadline=None)
    def test_mul(self, pair):
        a, b = pair
        expected = [x * y for x, y in zip(scalar_rows(a), scalar_rows(b))]
        assert vz.mul(a, b).to_unscaled() == [v.unscaled for v in expected]

    @given(vector_pairs(max_precision=14, max_rows=10))
    @settings(max_examples=50, deadline=None)
    def test_div(self, pair):
        a, b = pair
        assume(all(v != 0 for v in b.to_unscaled()))
        expected = [x / y for x, y in zip(scalar_rows(a), scalar_rows(b))]
        result = vz.div(a, b)
        assert result.spec == expected[0].spec
        assert result.to_unscaled() == [v.unscaled for v in expected]

    @given(vector_pairs(max_precision=14, max_rows=10))
    @settings(max_examples=50, deadline=None)
    def test_compare(self, pair):
        a, b = pair
        expected = [x.compare(y) for x, y in zip(scalar_rows(a), scalar_rows(b))]
        assert vz.compare(a, b).tolist() == expected

    @given(vector_pairs())
    @settings(max_examples=40, deadline=None)
    def test_neg(self, pair):
        a, _ = pair
        assert vz.neg(a).to_unscaled() == [-v for v in a.to_unscaled()]


class TestMod:
    def test_matches_scalar(self):
        spec = DecimalSpec(18, 0)
        a = DecimalVector.from_unscaled([17, -17, 100, 0], spec)
        b = DecimalVector.from_unscaled([5, 5, 7, 3], spec)
        assert vz.mod(a, b).to_unscaled() == [2, -2, 2, 0]

    def test_zero_divisor_raises(self):
        spec = DecimalSpec(18, 0)
        a = DecimalVector.from_unscaled([17], spec)
        b = DecimalVector.from_unscaled([0], spec)
        with pytest.raises(DivisionByZeroError):
            vz.mod(a, b)


class TestRescale:
    def test_upward(self):
        spec = DecimalSpec(4, 1)
        vector = DecimalVector.from_unscaled([11, -25], spec)
        rescaled = vector.rescale(3)
        assert rescaled.spec.scale == 3
        assert rescaled.to_unscaled() == [1100, -2500]

    def test_downward_truncates(self):
        spec = DecimalSpec(6, 3)
        vector = DecimalVector.from_unscaled([1999, -1999], spec)
        rescaled = vector.rescale(1)
        assert rescaled.to_unscaled() == [19, -19]

    def test_with_spec_pads_words(self):
        narrow = DecimalVector.from_unscaled([5, -7], DecimalSpec(4, 2))
        wide = narrow.with_spec(DecimalSpec(40, 2))
        assert wide.words.shape[1] == DecimalSpec(40, 2).words
        assert wide.to_unscaled() == [5, -7]

    def test_with_spec_overflow_raises(self):
        wide = DecimalVector.from_unscaled([10**20], DecimalSpec(21, 0))
        with pytest.raises(PrecisionOverflowError):
            wide.with_spec(DecimalSpec(9, 0))


class TestWideColumns:
    def test_len32_add_carry_chain(self):
        # Exercise the full 32-limb carry chain of the LEN=32 configuration.
        spec = DecimalSpec(307, 2)
        big = spec.max_unscaled
        a = DecimalVector.from_unscaled([big, -big, big // 2], spec)
        b = DecimalVector.from_unscaled([big, big, big // 3], spec)
        result = vz.add(a, b)
        assert result.to_unscaled() == [2 * big, 0, big // 2 + big // 3]

    def test_len16_multiplication(self):
        spec = DecimalSpec(153, 0)
        a_value = 10**150 + 12345
        b_value = 10**100 + 67890
        a = DecimalVector.from_unscaled([a_value], spec)
        b = DecimalVector.from_unscaled([b_value], spec)
        assert vz.mul(a, b).to_unscaled() == [a_value * b_value]
