"""Tests for the sub-quadratic multiplication algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import words as w
from repro.core.decimal.fastmul import NTT_PRIME, ntt_multiply, toom3
from repro.core.decimal.karatsuba import karatsuba


def big_ints(bits):
    return st.integers(min_value=0, max_value=(1 << bits) - 1)


class TestToom3:
    @given(big_ints(2048), big_ints(2048))
    @settings(max_examples=30, deadline=None)
    def test_matches_int(self, a, b):
        width = 64
        product = toom3(w.from_int(a, width), w.from_int(b, width), threshold=4)
        assert w.to_int(product) == a * b

    def test_recursive_path(self):
        a = (1 << 3000) - 12345
        b = (1 << 2800) + 6789
        width = 96
        product = toom3(w.from_int(a, width), w.from_int(b, width), threshold=4)
        assert w.to_int(product) == a * b

    def test_zero(self):
        assert w.to_int(toom3(w.from_int(0, 8), w.from_int(99, 8))) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            toom3([1], [1], threshold=2)

    @pytest.mark.parametrize("threshold", [3, 6, 24])
    def test_threshold_invariant(self, threshold):
        a, b = 7**300, 3**500
        product = toom3(w.from_int(a, 30), w.from_int(b, 30), threshold=threshold)
        assert w.to_int(product) == a * b


class TestNtt:
    def test_prime_structure(self):
        # The Goldilocks prime supports power-of-two NTT lengths.
        assert NTT_PRIME == 2**64 - 2**32 + 1
        assert (NTT_PRIME - 1) % (1 << 32) == 0

    @given(big_ints(1536), big_ints(1536))
    @settings(max_examples=30, deadline=None)
    def test_matches_int(self, a, b):
        width = 48
        product = ntt_multiply(w.from_int(a, width), w.from_int(b, width))
        assert w.to_int(product) == a * b

    def test_zero_operand(self):
        assert w.is_zero(ntt_multiply(w.from_int(0, 4), w.from_int(12345, 4)))

    def test_single_word(self):
        product = ntt_multiply([0xFFFFFFFF], [0xFFFFFFFF])
        assert w.to_int(product) == 0xFFFFFFFF * 0xFFFFFFFF

    def test_very_wide(self):
        a = (1 << 9000) - 987654321
        b = (1 << 8000) + 123456789
        width = 290
        product = ntt_multiply(w.from_int(a, width), w.from_int(b, width))
        assert w.to_int(product) == a * b


class TestAlgorithmAgreement:
    @given(big_ints(1024), big_ints(1024))
    @settings(max_examples=20, deadline=None)
    def test_all_four_agree(self, a, b):
        """Schoolbook, Karatsuba, Toom-3 and NTT: one answer."""
        width = 32
        wa, wb = w.from_int(a, width), w.from_int(b, width)
        schoolbook = w.to_int(w.mul(list(wa), list(wb)))
        assert w.to_int(karatsuba(wa, wb, threshold=4)) == schoolbook
        assert w.to_int(toom3(wa, wb, threshold=4)) == schoolbook
        assert w.to_int(ntt_multiply(wa, wb)) == schoolbook
