"""Algebraic invariants of DECIMAL arithmetic (hypothesis property tests).

The fixed-point semantics are exact for +, -, x (the inference rules size
containers so nothing truncates), so the classical ring axioms must hold
*exactly* -- any carry-chain or sign-handling bug breaks one of them.
Division/truncating operations get ordering and bounding invariants
instead.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue


@st.composite
def values(draw, max_precision=20):
    precision = draw(st.integers(min_value=1, max_value=max_precision))
    scale = draw(st.integers(min_value=0, max_value=precision))
    spec = DecimalSpec(precision, scale)
    unscaled = draw(st.integers(min_value=-spec.max_unscaled, max_value=spec.max_unscaled))
    return DecimalValue.from_unscaled(unscaled, spec)


def exact(value: DecimalValue) -> Fraction:
    return Fraction(*value.to_fraction_parts())


class TestRingAxioms:
    @given(values(), values())
    @settings(max_examples=150, deadline=None)
    def test_addition_commutes(self, a, b):
        assert exact(a + b) == exact(b + a)

    @given(values(), values())
    @settings(max_examples=150, deadline=None)
    def test_multiplication_commutes(self, a, b):
        assert exact(a * b) == exact(b * a)

    @given(values(max_precision=12), values(max_precision=12), values(max_precision=12))
    @settings(max_examples=100, deadline=None)
    def test_addition_associates(self, a, b, c):
        assert exact((a + b) + c) == exact(a + (b + c))

    @given(values(max_precision=10), values(max_precision=10), values(max_precision=10))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_associates(self, a, b, c):
        assert exact((a * b) * c) == exact(a * (b * c))

    @given(values(max_precision=10), values(max_precision=10), values(max_precision=10))
    @settings(max_examples=100, deadline=None)
    def test_distributivity(self, a, b, c):
        assert exact(a * (b + c)) == exact(a * b) + exact(a * c)

    @given(values())
    @settings(max_examples=100, deadline=None)
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero

    @given(values())
    @settings(max_examples=100, deadline=None)
    def test_subtraction_is_negated_addition(self, a):
        b = DecimalValue.from_unscaled(a.spec.max_unscaled // 3, a.spec)
        assert exact(a - b) == exact(a + (-b))


class TestDivisionInvariants:
    @given(values(max_precision=12), values(max_precision=10))
    @settings(max_examples=100, deadline=None)
    def test_quotient_brackets_exact_value(self, a, b):
        assume(not b.is_zero)
        result_spec = inference.div_result(a.spec, b.spec)
        expected_magnitude = (
            abs(a.unscaled) * 10 ** inference.div_prescale(b.spec) // abs(b.unscaled)
        )
        assume(result_spec.fits(expected_magnitude))  # stay off the wrap path
        quotient = a / b
        exact_ratio = exact(a) / exact(b)
        ulp = Fraction(1, 10**quotient.spec.scale)
        # Truncation toward zero: |q| <= |exact| < |q| + ulp.
        assert abs(exact(quotient)) <= abs(exact_ratio) < abs(exact(quotient)) + ulp

    @given(values(max_precision=12))
    @settings(max_examples=60, deadline=None)
    def test_division_by_one(self, a):
        one = DecimalValue.from_literal(1)
        quotient = a / one
        assert exact(quotient) == exact(a)

    @given(
        st.integers(min_value=-(10**15), max_value=10**15),
        st.integers(min_value=1, max_value=10**12),
    )
    @settings(max_examples=100, deadline=None)
    def test_divmod_identity(self, a_int, b_int):
        """floor-ish identity: a == (a // b) * b + a % b for integers."""
        spec_a = DecimalSpec(16, 0)
        spec_b = DecimalSpec(13, 0)
        a = DecimalValue.from_unscaled(a_int, spec_a)
        b = DecimalValue.from_unscaled(b_int, spec_b)
        remainder = a % b
        # Our % is C-style (sign follows dividend), so reconstruct with the
        # truncating quotient.
        quotient_int = abs(a_int) // b_int * (1 if a_int >= 0 else -1)
        assert quotient_int * b_int + remainder.unscaled == a_int


class TestOrderingInvariants:
    @given(values(), values(), values())
    @settings(max_examples=100, deadline=None)
    def test_comparison_is_transitive(self, a, b, c):
        ordered = sorted([a, b, c])
        assert exact(ordered[0]) <= exact(ordered[1]) <= exact(ordered[2])

    @given(values(max_precision=12), values(max_precision=12), values(max_precision=12))
    @settings(max_examples=100, deadline=None)
    def test_addition_is_monotone(self, a, b, c):
        if a <= b:
            assert exact(a + c) <= exact(b + c)

    @given(values())
    @settings(max_examples=60, deadline=None)
    def test_rescale_preserves_order_against_zero(self, a):
        rescaled = a.rescale(a.spec.scale + 5)
        zero = DecimalValue.zero(a.spec)
        assert (a < zero) == (rescaled < zero.rescale(zero.spec.scale + 5))
