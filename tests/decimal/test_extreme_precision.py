"""Arbitrary-precision stress tests.

The paper's claim is *arbitrary* precision -- "the practical limit should
only be imposed by the available memory" (section II-A), with the intro
citing workloads needing up to 20,000 digits.  These tests exercise the
full stack (specs, compact layout, vector arithmetic, kernels) at
precisions far beyond the evaluation's LEN=32.
"""


from repro.core.decimal.context import DecimalSpec, words_for_precision
from repro.core.decimal.value import DecimalValue
from repro.core.decimal.vectorized import DecimalVector
from repro.core.decimal import vectorized as vz
from repro.core.jit import compile_expression
from repro.gpusim import execute, kernel_time


class TestThousandDigits:
    SPEC = DecimalSpec(1000, 100)

    def test_spec_storage_lengths(self):
        assert self.SPEC.words == words_for_precision(1000)
        assert self.SPEC.words >= 100  # ~3322 bits
        assert self.SPEC.compact_bytes <= 4 * self.SPEC.words + 1

    def test_roundtrip(self):
        value = 10**999 - 10**500 + 12345
        column = DecimalVector.from_unscaled([value, -value], self.SPEC)
        assert DecimalVector.from_compact(column.to_compact(), self.SPEC).to_unscaled() == [
            value,
            -value,
        ]

    def test_arithmetic(self):
        a = DecimalValue.from_unscaled(10**999 - 1, self.SPEC)
        b = DecimalValue.from_unscaled(1, self.SPEC)
        assert (a + b).unscaled == 10**999
        assert (a - a).is_zero

    def test_kernel_at_1000_digits(self):
        schema = {"a": self.SPEC, "b": self.SPEC}
        compiled = compile_expression("a + b", schema)
        values_a = [10**999 - 7, -(10**998)]
        values_b = [7, 10**998]
        columns = {
            "a": DecimalVector.from_unscaled(values_a, self.SPEC).to_compact(),
            "b": DecimalVector.from_unscaled(values_b, self.SPEC).to_compact(),
        }
        run = execute(compiled.kernel, columns, 2)
        assert run.result.to_unscaled() == [10**999, 0]


class TestTwentyThousandDigits:
    """The gradient-domain-processing precision from the paper's intro."""

    SPEC = DecimalSpec(20_000, 10_000)

    def test_spec_is_constructible(self):
        assert self.SPEC.words == words_for_precision(20_000)
        assert self.SPEC.words > 2000

    def test_multiplication_of_10k_digit_numbers(self):
        half = DecimalSpec(10_000, 0)
        a = 10**9_999 + 271828
        b = 10**9_999 - 314159
        va = DecimalVector.from_unscaled([a], half)
        vb = DecimalVector.from_unscaled([b], half)
        product = vz.mul(va, vb)
        assert product.to_unscaled() == [a * b]

    def test_timing_model_scales(self):
        # The cost model stays finite and monotone out to 20k digits.
        schema_small = {"a": DecimalSpec(307, 2), "b": DecimalSpec(307, 2)}
        schema_huge = {"a": DecimalSpec(19_999, 2), "b": DecimalSpec(19_999, 2)}
        small = kernel_time(compile_expression("a + b", schema_small).kernel, 1_000_000)
        huge = kernel_time(compile_expression("a + b", schema_huge).kernel, 1_000_000)
        assert huge.seconds > small.seconds
        assert huge.seconds < 3600  # finite and sane


class TestDegenerateShapes:
    def test_scale_equals_precision(self):
        spec = DecimalSpec(50, 50)
        value = DecimalValue.from_unscaled(10**50 - 1, spec)
        assert str(value).startswith("0.")

    def test_precision_one(self):
        spec = DecimalSpec(1, 0)
        a = DecimalValue.from_unscaled(9, spec)
        b = DecimalValue.from_unscaled(9, spec)
        assert (a + b).unscaled == 18  # result spec widens to (2, 0)

    def test_single_row_wide_kernel(self):
        spec = DecimalSpec(2000, 1)
        compiled = compile_expression("a * 2", {"a": spec})
        columns = {"a": DecimalVector.from_unscaled([10**1999 // 2], spec).to_compact()}
        run = execute(compiled.kernel, columns, 1)
        assert run.result.to_unscaled() == [2 * (10**1999 // 2)]
