"""Tests for the multi-word limb arithmetic (carry chains, bfind, pow10)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BASE


def ints(max_words=8):
    return st.integers(min_value=0, max_value=(1 << (32 * max_words)) - 1)


class TestRoundtrip:
    @given(ints())
    def test_from_to_int(self, value):
        assert w.to_int(w.from_int(value, 8)) == value

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            w.from_int(WORD_BASE, 1)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            w.from_int(-1, 2)

    def test_zero(self):
        assert w.is_zero(w.zero(4))
        assert not w.is_zero([0, 1, 0])


class TestAddSub:
    @given(ints(4), ints(4))
    def test_add_matches_int(self, a, b):
        out, carry = w.add(w.from_int(a, 4), w.from_int(b, 4), 4)
        assert w.to_int(out) + (carry << 128) == a + b

    @given(ints(4), ints(4))
    def test_sub_matches_int(self, a, b):
        big, small = max(a, b), min(a, b)
        out, borrow = w.sub(w.from_int(big, 4), w.from_int(small, 4), 4)
        assert borrow == 0
        assert w.to_int(out) == big - small

    def test_sub_borrow_out(self):
        out, borrow = w.sub(w.from_int(1, 2), w.from_int(2, 2), 2)
        assert borrow == 1  # wrapped, like subc

    def test_carry_chain_across_all_words(self):
        # all-ones + 1 ripples a carry through every limb.
        all_ones = [0xFFFFFFFF] * 4
        out, carry = w.add(all_ones, w.from_int(1, 4), 4)
        assert w.is_zero(out) and carry == 1

    @given(ints(4), ints(4))
    def test_compare_matches_int(self, a, b):
        result = w.compare(w.from_int(a, 4), w.from_int(b, 4))
        assert result == (a > b) - (a < b)

    def test_compare_mixed_lengths(self):
        assert w.compare([5], [5, 0, 0]) == 0
        assert w.compare([0, 1], [5]) == 1


class TestMul:
    @given(ints(4), ints(4))
    def test_schoolbook_matches_int(self, a, b):
        product = w.mul(w.from_int(a, 4), w.from_int(b, 4))
        assert len(product) == 8
        assert w.to_int(product) == a * b

    @given(ints(3), st.integers(min_value=0, max_value=WORD_BASE - 1))
    def test_mul_small(self, a, factor):
        out, carry = w.mul_small(w.from_int(a, 3), factor, 3)
        assert w.to_int(out) + (carry << 96) == a * factor

    def test_mul_small_rejects_wide_factor(self):
        with pytest.raises(ValueError):
            w.mul_small([1], WORD_BASE, 1)

    @given(ints(3), st.integers(min_value=0, max_value=2))
    def test_shift_words_left(self, a, count):
        out = w.shift_words_left(w.from_int(a, 3), count, 6)
        assert w.to_int(out) == a << (32 * count)


class TestBfind:
    def test_zero_is_minus_one(self):
        assert w.bfind([0, 0, 0]) == -1

    @given(st.integers(min_value=1, max_value=(1 << 256) - 1))
    def test_matches_bit_length(self, value):
        assert w.bfind(w.from_int(value, 8)) == value.bit_length() - 1

    def test_word_boundaries(self):
        assert w.bfind([0, 1]) == 32
        assert w.bfind([0x80000000]) == 31


class TestPow10:
    @given(ints(2), st.integers(min_value=0, max_value=20))
    def test_mul_pow10_matches_int(self, a, exponent):
        width = 8
        if a * 10**exponent >= 1 << (32 * width):
            with pytest.raises(OverflowError):
                w.mul_pow10(w.from_int(a, 2), exponent, width)
        else:
            out = w.mul_pow10(w.from_int(a, 2), exponent, width)
            assert w.to_int(out) == a * 10**exponent

    @given(ints(4), st.integers(min_value=0, max_value=15))
    def test_div_pow10_truncates(self, a, exponent):
        out = w.div_pow10(w.from_int(a, 4), exponent, 4)
        assert w.to_int(out) == a // 10**exponent

    def test_pow10_words_needed(self):
        assert w.pow10_words_needed(0) == 1
        assert w.pow10_words_needed(9) == 1
        assert w.pow10_words_needed(10) == 2
        for exponent in range(1, 60):
            needed = w.pow10_words_needed(exponent)
            assert 10**exponent < 1 << (32 * needed)
