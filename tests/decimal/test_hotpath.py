"""Bit-exactness of the vectorised hot path vs the row-loop reference.

The batched kernels in :mod:`repro.core.decimal.vectorized` replaced
per-row Python loops; those loops live on in
:mod:`repro.core.decimal.reference` as the oracle.  These tests sweep the
vectorised fast paths against the reference across signs, zero rows,
max-magnitude values, and mixed uint64/wide columns over ``Lw`` 1..32,
plus the row-indexed zero-divisor errors and the ``neg``/``absolute``
aliasing contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import division, reference
from repro.core.decimal import vectorized as vz
from repro.core.decimal.context import DecimalSpec, precision_for_words
from repro.core.decimal.vectorized import DecimalVector
from repro.errors import DivisionByZeroError

ALL_WIDTHS = (1, 2, 3, 4, 8, 16, 17, 32)


def assert_vectors_equal(actual: DecimalVector, expected: DecimalVector) -> None:
    assert actual.spec == expected.spec
    assert np.array_equal(
        np.asarray(actual.negative, bool), np.asarray(expected.negative, bool)
    )
    assert np.array_equal(actual.words, expected.words)


def column_values(width: int, scale: int = 2):
    """Mixed-size signed values for one register width: the uint64-friendly
    band, the full wide band, zeros, and the exact max magnitudes."""
    spec = DecimalSpec(precision_for_words(width), scale)
    cap = spec.max_unscaled
    small_cap = min(10**9, cap)
    small = st.integers(min_value=-small_cap, max_value=small_cap)
    wide = st.integers(min_value=-cap, max_value=cap)
    edges = st.sampled_from([0, 1, -1, cap, -cap])
    return spec, st.lists(
        st.one_of(small, wide, edges), min_size=1, max_size=24
    )


@st.composite
def single_columns(draw, scale=2):
    width = draw(st.sampled_from(ALL_WIDTHS))
    spec, values = column_values(width, scale)
    return DecimalVector.from_unscaled(draw(values), spec), spec


@st.composite
def operand_pairs(draw, scale=2, nonzero_b=False, same_spec=False):
    width_a = draw(st.sampled_from(ALL_WIDTHS))
    width_b = width_a if same_spec else draw(st.sampled_from(ALL_WIDTHS))
    spec_a, values_a = column_values(width_a, scale)
    spec_b, _ = column_values(width_b, scale)
    a_vals = draw(values_a)
    b_vals = draw(
        st.lists(
            st.integers(min_value=-spec_b.max_unscaled, max_value=spec_b.max_unscaled),
            min_size=len(a_vals),
            max_size=len(a_vals),
        )
    )
    if nonzero_b:
        b_vals = [v if v else 7 for v in b_vals]
    return (
        DecimalVector.from_unscaled(a_vals, spec_a),
        DecimalVector.from_unscaled(b_vals, spec_b),
    )


class TestConversionRoundtrips:
    @given(single_columns())
    @settings(max_examples=120, deadline=None)
    def test_to_unscaled_matches_rowloop(self, built):
        vector, _spec = built
        assert vector.to_unscaled() == reference.to_unscaled_rowloop(vector)

    @given(single_columns())
    @settings(max_examples=80, deadline=None)
    def test_from_unscaled_matches_rowloop(self, built):
        vector, spec = built
        values = reference.to_unscaled_rowloop(vector)
        assert_vectors_equal(
            DecimalVector.from_unscaled(values, spec),
            reference.from_unscaled_rowloop(values, spec),
        )

    @given(single_columns(), st.sampled_from(ALL_WIDTHS))
    @settings(max_examples=80, deadline=None)
    def test_container_constructor_matches_rowloop(self, built, target_width):
        vector, _spec = built
        values = reference.to_unscaled_rowloop(vector)
        target = DecimalSpec(precision_for_words(target_width), 2)
        assert_vectors_equal(
            DecimalVector.from_unscaled_container(values, target),
            reference.from_unscaled_container_rowloop(values, target),
        )

    def test_max_magnitude_every_width(self):
        for width in range(1, 33):
            spec = DecimalSpec(precision_for_words(width), 2)
            cap = spec.max_unscaled
            values = [cap, -cap, 0, 1, -1, cap // 2]
            vector = DecimalVector.from_unscaled(values, spec)
            assert vector.to_unscaled() == values
            assert vector.to_unscaled() == reference.to_unscaled_rowloop(vector)


class TestKernelsMatchRowloop:
    @given(operand_pairs(nonzero_b=True))
    @settings(max_examples=100, deadline=None)
    def test_div(self, pair):
        a, b = pair
        assert_vectors_equal(vz.div(a, b), reference.div_rowloop(a, b))

    @given(operand_pairs(scale=0, nonzero_b=True, same_spec=True))
    @settings(max_examples=80, deadline=None)
    def test_mod(self, pair):
        a, b = pair
        assert_vectors_equal(vz.mod(a, b), reference.mod_rowloop(a, b))

    @given(operand_pairs())
    @settings(max_examples=60, deadline=None)
    def test_add(self, pair):
        a, b = pair
        assert_vectors_equal(vz.add(a, b), reference.add_rowloop(a, b))

    @given(operand_pairs())
    @settings(max_examples=60, deadline=None)
    def test_mul(self, pair):
        a, b = pair
        assert_vectors_equal(vz.mul(a, b), reference.mul_rowloop(a, b))

    @given(single_columns(scale=6), st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_rescale_down(self, built, target_scale):
        vector, _spec = built
        assert_vectors_equal(
            vector.rescale(target_scale),
            reference.rescale_down_rowloop(vector, target_scale),
        )

    @given(
        single_columns(scale=6),
        st.integers(min_value=0, max_value=6),
        st.sampled_from(["trunc", "round", "ceil", "floor"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_rescale_with_mode_short_drops(self, built, target_scale, mode):
        vector, spec = built
        target = DecimalSpec(spec.precision, target_scale)
        assert_vectors_equal(
            vz.rescale_with_mode(vector, target, mode),
            reference.rescale_with_mode_rowloop(vector, target, mode),
        )

    @given(st.sampled_from(["trunc", "round", "ceil", "floor"]))
    @settings(max_examples=20, deadline=None)
    def test_rescale_with_mode_wide_drop(self, mode):
        # Dropping more than nine digits at once takes the big-int branch.
        spec = DecimalSpec(30, 14)
        values = [10**29 - 1, -(10**29 - 1), 0, 5 * 10**13, -(5 * 10**13), 123]
        vector = DecimalVector.from_unscaled(values, spec)
        target = DecimalSpec(30, 0)
        assert_vectors_equal(
            vz.rescale_with_mode(vector, target, mode),
            reference.rescale_with_mode_rowloop(vector, target, mode),
        )

    def test_division_fast_path_classes_in_one_column(self):
        # One column hitting all three division size classes at once:
        # native uint64 rows, single-word-divisor rows, and wide rows.
        spec = DecimalSpec(precision_for_words(8), 2)
        a_vals = [123456, 10**20, 10**70, -98765, 0, 10**70]
        b_vals = [7, 3, 5, -(10**15), 11, -(10**55)]
        a = DecimalVector.from_unscaled(a_vals, spec)
        b = DecimalVector.from_unscaled(b_vals, spec)
        assert_vectors_equal(vz.div(a, b), reference.div_rowloop(a, b))


class TestZeroDivisorRowIndex:
    def test_div_names_first_offending_row(self):
        spec = DecimalSpec(10, 2)
        a = DecimalVector.from_unscaled([100, 200, 300], spec)
        b = DecimalVector.from_unscaled([5, 0, 0], spec)
        with pytest.raises(DivisionByZeroError, match=r"division by zero at row 1"):
            vz.div(a, b)

    def test_mod_names_first_offending_row(self):
        spec = DecimalSpec(10, 0)
        a = DecimalVector.from_unscaled([100, 200, 300], spec)
        b = DecimalVector.from_unscaled([5, 4, 0], spec)
        with pytest.raises(DivisionByZeroError, match=r"modulo by zero at row 2"):
            vz.mod(a, b)

    def test_short_div_columns_names_row(self):
        words = np.ones((4, 2), dtype=np.uint32)
        divisors = np.array([3, 9, 0, 1], dtype=np.uint64)
        with pytest.raises(DivisionByZeroError, match=r"row 2"):
            division.short_div_columns(words, divisors)


class TestAliasingContract:
    def test_neg_shares_words(self):
        spec = DecimalSpec(19, 2)
        a = DecimalVector.from_unscaled([5, -7, 0], spec)
        negated = vz.neg(a)
        assert negated.words is a.words
        assert negated.to_unscaled() == [-5, 7, 0]

    def test_absolute_shares_words(self):
        spec = DecimalSpec(19, 2)
        a = DecimalVector.from_unscaled([5, -7, 0], spec)
        absolute = vz.absolute(a)
        assert absolute.words is a.words
        assert absolute.to_unscaled() == [5, 7, 0]

    def test_copy_detaches(self):
        spec = DecimalSpec(19, 2)
        a = DecimalVector.from_unscaled([5, -7, 0], spec)
        clone = a.copy()
        assert clone.words is not a.words
        assert not np.shares_memory(clone.words, a.words)
