"""Tests for scalar DecimalValue arithmetic against a Fraction oracle."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.errors import DivisionByZeroError, PrecisionOverflowError


def fraction(value: DecimalValue) -> Fraction:
    unscaled, denominator = value.to_fraction_parts()
    return Fraction(unscaled, denominator)


@st.composite
def decimals(draw, max_precision=24):
    precision = draw(st.integers(min_value=1, max_value=max_precision))
    scale = draw(st.integers(min_value=0, max_value=precision))
    spec = DecimalSpec(precision, scale)
    unscaled = draw(st.integers(min_value=-spec.max_unscaled, max_value=spec.max_unscaled))
    return DecimalValue.from_unscaled(unscaled, spec)


class TestConstruction:
    def test_from_literal_infers_minimal_spec(self):
        # "1.23 is DECIMAL(3, 2) and 10 is DECIMAL(2, 0)" (section III-D2).
        assert DecimalValue.from_literal("1.23").spec == DecimalSpec(3, 2)
        assert DecimalValue.from_literal(10).spec == DecimalSpec(2, 0)

    def test_from_literal_with_spec(self):
        value = DecimalValue.from_literal("-1.23", DecimalSpec(10, 2))
        assert value.unscaled == -123
        assert str(value) == "-1.23"

    def test_float_uses_decimal_repr(self):
        # 0.1 must become exactly 0.1, not its binary expansion (Figure 1).
        value = DecimalValue.from_literal(0.1, DecimalSpec(5, 3))
        assert value.unscaled == 100

    def test_overflow_raises(self):
        with pytest.raises(PrecisionOverflowError):
            DecimalValue.from_unscaled(10000, DecimalSpec(4, 2))

    def test_zero_is_not_negative(self):
        value = DecimalValue.from_literal("-0.00", DecimalSpec(4, 2))
        assert not value.negative
        assert value.is_zero

    def test_str_roundtrip(self):
        for text in ["0.01", "-123.456", "7", "-0.5", "99999.99999"]:
            value = DecimalValue.from_literal(text)
            assert str(value) == text


class TestAddSub:
    def test_paper_alignment_example(self):
        # 1.23 (4,2) + 0.1 (3,1): 0.1 aligns to 0.10, sum 1.33.
        a = DecimalValue.from_literal("1.23", DecimalSpec(4, 2))
        b = DecimalValue.from_literal("0.1", DecimalSpec(3, 1))
        assert str(a + b) == "1.33"

    @given(decimals(), decimals())
    @settings(max_examples=150, deadline=None)
    def test_add_matches_fraction(self, a, b):
        assert fraction(a + b) == fraction(a) + fraction(b)

    @given(decimals(), decimals())
    @settings(max_examples=150, deadline=None)
    def test_sub_matches_fraction(self, a, b):
        assert fraction(a - b) == fraction(a) - fraction(b)

    @given(decimals())
    def test_neg_is_involution(self, a):
        assert fraction(-(-a)) == fraction(a)

    def test_mixed_signs_pick_larger_minuend(self):
        a = DecimalValue.from_literal("5.00")
        b = DecimalValue.from_literal("-7.25")
        assert str(a + b) == "-2.25"
        assert str(b + a) == "-2.25"

    def test_cancellation_to_zero(self):
        a = DecimalValue.from_literal("123.45")
        result = a - a
        assert result.is_zero and not result.negative


class TestMul:
    @given(decimals(max_precision=18), decimals(max_precision=18))
    @settings(max_examples=150, deadline=None)
    def test_matches_fraction(self, a, b):
        assert fraction(a * b) == fraction(a) * fraction(b)

    def test_spec_follows_rule(self):
        a = DecimalValue.from_literal("1.5")
        b = DecimalValue.from_literal("2.25")
        assert (a * b).spec == inference.mul_result(a.spec, b.spec)

    def test_sign_of_product(self):
        a = DecimalValue.from_literal("-3")
        b = DecimalValue.from_literal("4")
        assert (a * b).unscaled == -12
        assert (a * a).unscaled == 9


class TestDiv:
    def test_truncates_at_s1_plus_4(self):
        a = DecimalValue.from_literal("1", DecimalSpec(5, 0))
        b = DecimalValue.from_literal("3", DecimalSpec(5, 0))
        result = a / b
        assert result.spec.scale == 4
        assert str(result) == "0.3333"

    @given(decimals(max_precision=15), decimals(max_precision=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_truncated_fraction(self, a, b):
        assume(not b.is_zero)
        result_spec = inference.div_result(a.spec, b.spec)
        expected_magnitude = abs(a.unscaled) * 10 ** inference.div_prescale(b.spec) // abs(
            b.unscaled
        )
        # Only compare when the quotient fits the paper-rule container.
        assume(result_spec.fits(expected_magnitude))
        result = a / b
        sign = -1 if (a.unscaled < 0) != (b.unscaled < 0) and expected_magnitude else 1
        assert result.unscaled == sign * expected_magnitude

    def test_divide_by_zero(self):
        a = DecimalValue.from_literal("1")
        with pytest.raises(DivisionByZeroError):
            a / DecimalValue.from_literal("0")

    def test_container_wrap_semantics(self):
        # A denormalised divisor (tiny value in a wide spec) overflows the
        # paper-rule container; the value wraps like the Lw-word register.
        a = DecimalValue.from_unscaled(999999999, DecimalSpec(10, 2))
        b = DecimalValue.from_unscaled(1, DecimalSpec(10, 1))
        result = a / b
        spec = inference.div_result(a.spec, b.spec)
        expected = (999999999 * 10**5) % (1 << (32 * spec.words))
        assert abs(result.unscaled) == expected


class TestMod:
    def test_integer_modulo(self):
        a = DecimalValue.from_literal(17)
        b = DecimalValue.from_literal(5)
        assert (a % b).unscaled == 2

    @given(
        st.integers(min_value=-(10**17), max_value=10**17),
        st.integers(min_value=1, max_value=10**15),
    )
    @settings(max_examples=100, deadline=None)
    def test_sign_follows_dividend(self, a_int, b_int):
        a = DecimalValue.from_unscaled(a_int, DecimalSpec(18, 0))
        b = DecimalValue.from_unscaled(b_int, DecimalSpec(16, 0))
        result = a % b
        expected = abs(a_int) % b_int
        assert result.unscaled == (-expected if a_int < 0 else expected)

    def test_modulo_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            DecimalValue.from_literal(5) % DecimalValue.from_literal(0)


class TestComparison:
    @given(decimals(), decimals())
    @settings(max_examples=150, deadline=None)
    def test_matches_fraction_order(self, a, b):
        fa, fb = fraction(a), fraction(b)
        assert (a < b) == (fa < fb)
        assert (a == b) == (fa == fb)
        assert (a >= b) == (fa >= fb)

    def test_cross_scale_equality(self):
        a = DecimalValue.from_literal("1.5", DecimalSpec(5, 1))
        b = DecimalValue.from_literal("1.50", DecimalSpec(8, 2))
        assert a == b
        assert hash(a) == hash(b)

    def test_sorting(self):
        values = [DecimalValue.from_literal(t) for t in ["3.5", "-2", "0", "3.49"]]
        ordered = sorted(values)
        assert [str(v) for v in ordered] == ["-2", "0", "3.49", "3.5"]


class TestRescale:
    def test_upward_alignment_multiplies(self):
        value = DecimalValue.from_literal("0.1", DecimalSpec(3, 1))
        assert value.rescale(2).unscaled == 10

    def test_downward_alignment_truncates(self):
        value = DecimalValue.from_literal("1.29", DecimalSpec(4, 2))
        assert value.rescale(1).unscaled == 12

    @given(decimals(max_precision=12), st.integers(min_value=0, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_upward_preserves_value(self, value, extra):
        rescaled = value.rescale(value.spec.scale + extra)
        assert fraction(rescaled) == fraction(value)
