"""Tests for explicit rounding modes and DECIMAL casts."""

import decimal as stdlib_decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.rounding import Rounding, cast, rescale, round_unscaled
from repro.core.decimal.value import DecimalValue
from repro.errors import PrecisionOverflowError

_STDLIB_MODES = {
    Rounding.DOWN: stdlib_decimal.ROUND_DOWN,
    Rounding.HALF_UP: stdlib_decimal.ROUND_HALF_UP,
    Rounding.HALF_EVEN: stdlib_decimal.ROUND_HALF_EVEN,
    Rounding.CEILING: stdlib_decimal.ROUND_CEILING,
    Rounding.FLOOR: stdlib_decimal.ROUND_FLOOR,
}


class TestRoundUnscaled:
    @pytest.mark.parametrize(
        "mode,value,expected",
        [
            (Rounding.DOWN, 1259, 125),
            (Rounding.DOWN, -1259, -125),
            (Rounding.HALF_UP, 1250, 125),
            (Rounding.HALF_UP, 1255, 126),  # 125.5 -> 126, ties away from zero
            (Rounding.HALF_UP, -1255, -126),
            (Rounding.HALF_EVEN, 1250, 125),  # exact, no tie
            (Rounding.CEILING, 1201, 121),
            (Rounding.CEILING, -1209, -120),
            (Rounding.FLOOR, 1209, 120),
            (Rounding.FLOOR, -1201, -121),
        ],
    )
    def test_single_digit_drop(self, mode, value, expected):
        assert round_unscaled(value, 1, mode) == expected

    def test_half_even_ties(self):
        # 125|5 and 124|5 dropping one digit: ties go to the even quotient.
        assert round_unscaled(1255, 1, Rounding.HALF_EVEN) == 126
        assert round_unscaled(1245, 1, Rounding.HALF_EVEN) == 124

    def test_zero_drop_identity(self):
        assert round_unscaled(123, 0, Rounding.HALF_UP) == 123

    def test_negative_drop_rejected(self):
        with pytest.raises(ValueError):
            round_unscaled(1, -1, Rounding.DOWN)

    @given(
        st.integers(min_value=-(10**18), max_value=10**18),
        st.integers(min_value=1, max_value=9),
        st.sampled_from(list(Rounding)),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_stdlib_decimal(self, value, drop, mode):
        got = round_unscaled(value, drop, mode)
        with stdlib_decimal.localcontext() as ctx:
            ctx.prec = 60
            expected = int(
                (stdlib_decimal.Decimal(value) / (10**drop)).quantize(
                    stdlib_decimal.Decimal(1), rounding=_STDLIB_MODES[mode]
                )
            )
        assert got == expected


class TestRescaleAndCast:
    def test_rescale_down_half_up(self):
        value = DecimalValue.from_literal("1.25", DecimalSpec(4, 2))
        assert str(rescale(value, 1, Rounding.HALF_UP)) == "1.3"

    def test_rescale_up_is_exact(self):
        value = DecimalValue.from_literal("1.5", DecimalSpec(4, 1))
        assert rescale(value, 3).unscaled == 1500

    def test_rounding_can_add_a_digit(self):
        value = DecimalValue.from_literal("9.99", DecimalSpec(3, 2))
        rounded = rescale(value, 1, Rounding.HALF_UP)
        assert str(rounded) == "10.0"

    def test_cast_checks_range(self):
        value = DecimalValue.from_literal("123.45", DecimalSpec(5, 2))
        with pytest.raises(PrecisionOverflowError):
            cast(value, DecimalSpec(3, 1))

    def test_cast_success(self):
        value = DecimalValue.from_literal("123.45", DecimalSpec(5, 2))
        assert str(cast(value, DecimalSpec(4, 1))) == "123.5"
        assert str(cast(value, DecimalSpec(4, 1), Rounding.DOWN)) == "123.4"
