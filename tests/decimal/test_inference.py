"""Tests for the section III-B3 precision/scale inference rules."""

import pytest

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.errors import TypeInferenceError


class TestAddRule:
    def test_same_scale(self):
        # (4,2) + (4,2) -> (5,2)
        assert inference.add_result(DecimalSpec(4, 2), DecimalSpec(4, 2)) == DecimalSpec(5, 2)

    def test_listing1_example(self):
        # DECIMAL(4, 2) + DECIMAL(4, 1): the paper expands the result to
        # precision 6 ("To avoid potential overflows ... we expand the
        # precision of the results to 6").
        result = inference.add_result(DecimalSpec(4, 2), DecimalSpec(4, 1))
        assert result == DecimalSpec(6, 2)

    def test_commutative(self):
        a, b = DecimalSpec(17, 11), DecimalSpec(12, 1)
        assert inference.add_result(a, b) == inference.add_result(b, a)

    def test_result_never_overflows(self):
        # The rule must cover the worst case: both operands at max magnitude.
        for p1, s1, p2, s2 in [(4, 2, 4, 1), (10, 5, 3, 0), (9, 9, 9, 1), (12, 2, 12, 2)]:
            a, b = DecimalSpec(p1, s1), DecimalSpec(p2, s2)
            result = inference.add_result(a, b)
            worst = a.max_unscaled * 10 ** (result.scale - s1) + b.max_unscaled * 10 ** (
                result.scale - s2
            )
            assert result.fits(worst)


class TestMulRule:
    def test_precisions_and_scales_add(self):
        assert inference.mul_result(DecimalSpec(4, 2), DecimalSpec(6, 3)) == DecimalSpec(10, 5)

    def test_result_never_overflows(self):
        a, b = DecimalSpec(7, 3), DecimalSpec(5, 5)
        result = inference.mul_result(a, b)
        assert result.fits(a.max_unscaled * b.max_unscaled)


class TestDivRule:
    def test_paper_formula(self):
        # dividend (12,2), divisor (6,3): (12-6+3+5, 2+4) = (14, 6)
        assert inference.div_result(DecimalSpec(12, 2), DecimalSpec(6, 3)) == DecimalSpec(14, 6)

    def test_scale_is_s1_plus_4(self):
        for s1 in range(0, 6):
            result = inference.div_result(DecimalSpec(10, s1), DecimalSpec(5, 2))
            assert result.scale == s1 + 4

    def test_prescale(self):
        assert inference.div_prescale(DecimalSpec(6, 3)) == 7

    def test_tiny_dividend_widens_precision(self):
        # (2,1) / (20,0) would give non-positive precision; spec stays valid.
        result = inference.div_result(DecimalSpec(2, 1), DecimalSpec(20, 0))
        assert result.precision >= result.scale + 1

    def test_no_overflow_for_normalized_divisor(self):
        # When the divisor uses all its integer digits the quotient fits.
        a, b = DecimalSpec(12, 2), DecimalSpec(6, 3)
        result = inference.div_result(a, b)
        smallest_divisor = 10 ** (b.precision - 1)  # full integer digits
        worst = a.max_unscaled * 10 ** inference.div_prescale(b) // smallest_divisor
        assert result.fits(worst)


class TestModRule:
    def test_integer_only(self):
        assert inference.mod_result(DecimalSpec(17, 0), DecimalSpec(18, 0)) == DecimalSpec(18, 0)

    def test_rejects_fractional(self):
        with pytest.raises(TypeInferenceError):
            inference.mod_result(DecimalSpec(5, 1), DecimalSpec(5, 0))
        with pytest.raises(TypeInferenceError):
            inference.mod_result(DecimalSpec(5, 0), DecimalSpec(5, 2))


class TestAggregateRules:
    def test_sum_widens_by_log10_n(self):
        result = inference.sum_result(DecimalSpec(12, 2), 10_000_000)
        assert result == DecimalSpec(19, 2)

    def test_sum_never_overflows(self):
        spec, n = DecimalSpec(6, 2), 1000
        result = inference.sum_result(spec, n)
        assert result.fits(spec.max_unscaled * n)

    def test_sum_rejects_empty(self):
        with pytest.raises(TypeInferenceError):
            inference.sum_result(DecimalSpec(5, 0), 0)

    def test_count_spec(self):
        assert inference.count_spec(10_000_000) == DecimalSpec(8, 0)
        assert inference.count_spec(1) == DecimalSpec(1, 0)
        assert inference.count_spec(9) == DecimalSpec(1, 0)
        assert inference.count_spec(10) == DecimalSpec(2, 0)

    def test_avg_follows_sum_then_div(self):
        spec = DecimalSpec(12, 2)
        n = 10_000_000
        expected = inference.div_result(inference.sum_result(spec, n), inference.count_spec(n))
        assert inference.avg_result(spec, n) == expected

    def test_minmax_unchanged(self):
        spec = DecimalSpec(29, 11)
        assert inference.minmax_result(spec) is spec
