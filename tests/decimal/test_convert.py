"""Tests for literal parsing and scale conversion."""

from decimal import Decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import convert
from repro.core.decimal.context import DecimalSpec
from repro.errors import ConversionError


class TestParseLiteral:
    def test_paper_examples(self):
        assert convert.parse_literal("1.23") == (False, 123, DecimalSpec(3, 2))
        assert convert.parse_literal("10") == (False, 10, DecimalSpec(2, 0))

    def test_negative(self):
        negative, unscaled, spec = convert.parse_literal("-0.5")
        assert negative and unscaled == 5 and spec == DecimalSpec(1, 1)

    def test_leading_zeros_do_not_inflate_precision(self):
        _, unscaled, spec = convert.parse_literal("000.25")
        assert unscaled == 25 and spec == DecimalSpec(2, 2)

    def test_trailing_fraction_zeros_count(self):
        # 1.230 keeps scale 3: trailing zeros are significant for DECIMAL.
        _, unscaled, spec = convert.parse_literal("1.230")
        assert unscaled == 1230 and spec == DecimalSpec(4, 3)

    def test_bare_point_forms(self):
        assert convert.parse_literal(".5")[1:] == (5, DecimalSpec(1, 1))
        assert convert.parse_literal("5.")[1:] == (5, DecimalSpec(1, 0))

    def test_zero(self):
        negative, unscaled, spec = convert.parse_literal("0")
        assert not negative and unscaled == 0 and spec == DecimalSpec(1, 0)

    @pytest.mark.parametrize("bad", ["", ".", "abc", "1.2.3", "1e5", "--1"])
    def test_rejects_non_literals(self, bad):
        with pytest.raises(ConversionError):
            convert.parse_literal(bad)

    @given(st.decimals(allow_nan=False, allow_infinity=False, places=6))
    @settings(max_examples=100, deadline=None)
    def test_matches_stdlib_decimal(self, value):
        import decimal as stdlib_decimal

        text = format(value, "f")
        negative, unscaled, spec = convert.parse_literal(text)
        sign = -1 if negative else 1
        with stdlib_decimal.localcontext() as ctx:
            ctx.prec = max(spec.precision + 2, 50)
            assert Decimal(sign * unscaled).scaleb(-spec.scale) == value


class TestLiteralToUnscaled:
    def test_int(self):
        assert convert.literal_to_unscaled(7, DecimalSpec(5, 2)) == (False, 700)

    def test_float_exact_decimal(self):
        assert convert.literal_to_unscaled(0.1, DecimalSpec(5, 3)) == (False, 100)

    def test_string(self):
        assert convert.literal_to_unscaled("-2.5", DecimalSpec(6, 2)) == (True, 250)

    def test_decimal(self):
        assert convert.literal_to_unscaled(Decimal("3.14"), DecimalSpec(6, 4)) == (False, 31400)

    def test_overflow(self):
        with pytest.raises(ConversionError):
            convert.literal_to_unscaled("123.45", DecimalSpec(4, 2))

    def test_bool_rejected(self):
        with pytest.raises(ConversionError):
            convert.literal_to_unscaled(True, DecimalSpec(4, 2))


class TestRescaleUnscaled:
    def test_up(self):
        assert convert.rescale_unscaled(123, 2, 4, DecimalSpec(10, 4)) == 12300

    def test_down_truncates(self):
        assert convert.rescale_unscaled(129, 2, 1, DecimalSpec(10, 1)) == 12

    def test_overflow_checked(self):
        with pytest.raises(ConversionError):
            convert.rescale_unscaled(99, 0, 4, DecimalSpec(4, 4))


class TestRender:
    @pytest.mark.parametrize(
        "negative,unscaled,scale,expected",
        [
            (False, 123, 2, "1.23"),
            (True, 123, 2, "-1.23"),
            (False, 5, 3, "0.005"),
            (True, 0, 2, "0.00"),
            (False, 7, 0, "7"),
        ],
    )
    def test_examples(self, negative, unscaled, scale, expected):
        assert convert.unscaled_to_string(negative, unscaled, scale) == expected
