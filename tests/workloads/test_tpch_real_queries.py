"""Tests running real TPC-H Q6 and a Q3-style join query end to end."""

import pytest

from repro.engine import Database
from repro.storage import tpch
from repro.workloads.tpch_queries import Q3_SQL, Q6_SQL


class TestQ6:
    def test_against_row_oracle(self):
        relation = tpch.lineitem(rows=3000, seed=11)
        db = Database(simulate_rows=10_000_000)
        db.register(relation)
        result = db.execute(Q6_SQL, include_scan=False)

        import datetime

        epoch = datetime.date(1992, 1, 1)
        lo = (datetime.date(1994, 1, 1) - epoch).days
        hi = (datetime.date(1995, 1, 1) - epoch).days
        price = relation.column("l_extendedprice").unscaled()
        disc = relation.column("l_discount").unscaled()
        qty = relation.column("l_quantity").unscaled()
        ship = relation.column("l_shipdate").data.tolist()
        expected = sum(
            price[i] * disc[i]
            for i in range(relation.rows)
            if lo <= ship[i] < hi and 5 <= disc[i] <= 7 and qty[i] < 2400
        )
        assert result.scalar.unscaled == expected

    def test_selectivity_reflected_in_costs(self):
        relation = tpch.lineitem(rows=3000, seed=11)
        db = Database(simulate_rows=10_000_000)
        db.register(relation)
        q6 = db.execute(Q6_SQL, include_scan=False)
        # Q6's filter keeps only a few percent of rows; the aggregation
        # cost must reflect the reduced simulated row count.
        full = db.execute(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem", include_scan=False
        )
        assert q6.report.aggregate_seconds < full.report.aggregate_seconds


class TestQ3Style:
    @pytest.fixture(scope="class")
    def db(self):
        order_count = 400
        database = Database(simulate_rows=1_000_000)
        database.register(
            tpch.lineitem_with_orderkeys(rows=2000, seed=7, order_count=order_count)
        )
        database.register(tpch.orders(rows=order_count, seed=17))
        database.register(tpch.customer(rows=50, seed=19))
        return database

    def test_runs_and_orders_by_revenue(self, db):
        result = db.execute(Q3_SQL, include_scan=False)
        assert len(result.rows) <= 10
        revenues = [row[1].unscaled for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_against_row_oracle(self, db):
        result = db.execute(Q3_SQL, include_scan=False)

        lineitem = db.catalog.get("lineitem")
        orders = db.catalog.get("orders")
        customer = db.catalog.get("customer")
        import datetime

        cutoff = (datetime.date(1995, 3, 15) - datetime.date(1992, 1, 1)).days
        segments = {
            key: seg.decode().strip()
            for key, seg in zip(
                customer.column("c_custkey").data.tolist(),
                customer.column("c_mktsegment").data.tolist(),
            )
        }
        order_info = {
            key: (custkey, date)
            for key, custkey, date in zip(
                orders.column("o_orderkey").data.tolist(),
                orders.column("o_custkey").data.tolist(),
                orders.column("o_orderdate").data.tolist(),
            )
        }
        revenue = {}
        price = lineitem.column("l_extendedprice").unscaled()
        disc = lineitem.column("l_discount").unscaled()
        lkeys = lineitem.column("l_orderkey").data.tolist()
        for i in range(lineitem.rows):
            info = order_info.get(lkeys[i])
            if info is None:
                continue
            custkey, date = info
            if date >= cutoff or segments.get(custkey) != "BUILDING":
                continue
            revenue[lkeys[i]] = revenue.get(lkeys[i], 0) + price[i] * (100 - disc[i])
        top = sorted(revenue.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        got = [(row[0], row[1].unscaled) for row in result.rows]
        assert sorted(got, key=lambda kv: (-kv[1], kv[0])) == [
            (k, v) for k, v in sorted(got, key=lambda kv: (-kv[1], kv[0]))
        ]
        # Compare as revenue multisets (ties may order differently).
        assert sorted(v for _, v in got) == sorted(v for _, v in top)
