"""Tests for the RSA workload (Query 4)."""

import pytest

from repro.engine import Database
from repro.workloads import rsa


class TestKeyGeneration:
    @pytest.mark.parametrize("precision", [18, 36, 72])
    def test_modulus_digit_length(self, precision):
        modulus = rsa.generate_modulus(precision, seed=precision)
        assert len(str(modulus)) == precision

    def test_modulus_is_semiprime_like(self):
        # Not prime itself, and odd (products of two odd primes).
        modulus = rsa.generate_modulus(18, seed=1)
        assert modulus % 2 == 1
        assert not rsa._is_probable_prime(modulus)

    def test_deterministic(self):
        assert rsa.generate_modulus(18, seed=5) == rsa.generate_modulus(18, seed=5)

    def test_primality_test_basics(self):
        known_primes = [2, 3, 5, 101, 104729, (1 << 61) - 1]
        for p in known_primes:
            assert rsa._is_probable_prime(p)
        for c in [1, 4, 100, 104730, (1 << 61) - 3]:
            assert not rsa._is_probable_prime(c)


class TestWorkload:
    def test_query_shape(self):
        workload = rsa.build_workload(4, rows=10)
        assert workload.query.startswith("SELECT c1 * c1 %")
        assert workload.relation.rows == 10

    def test_messages_below_modulus(self):
        workload = rsa.build_workload(4, rows=50)
        for message in workload.relation.column("c1").unscaled():
            assert 0 <= message < workload.modulus

    @pytest.mark.parametrize("length", [4, 8])
    def test_end_to_end_encryption(self, length):
        workload = rsa.build_workload(length, rows=40)
        db = Database()
        db.register(workload.relation)
        result = db.execute(workload.query)
        got = [value.unscaled for (value,) in result.rows]
        assert got == workload.oracle()

    def test_oracle_is_cube_mod_n(self):
        workload = rsa.build_workload(4, rows=5)
        messages = workload.relation.column("c1").unscaled()
        assert workload.oracle() == [pow(m, 3, workload.modulus) for m in messages]
