"""Tests for the trigonometric workload (Query 5)."""

import math
from fractions import Fraction

import pytest

from repro.engine import Database
from repro.workloads import trig


class TestExpression:
    def test_three_terms_matches_paper(self):
        """Query 5: c1 - c1*c1*c1/6 + c1*c1*c1*c1*c1/120."""
        text = trig.sine_expression("c1", 3)
        assert text == "c1 - c1*c1*c1/6 + c1*c1*c1*c1*c1/120"

    def test_term_count(self):
        for terms in range(1, 12):
            text = trig.sine_expression("x", terms)
            assert text.count("/") == terms - 1

    def test_rejects_zero_terms(self):
        with pytest.raises(ValueError):
            trig.sine_expression("x", 0)


class TestOracle:
    @pytest.mark.parametrize("x", [0.01, 0.5, 0.78, 1.0, 1.56])
    def test_matches_math_sin(self, x):
        unscaled = int(round(x * 10**8))
        value = trig.sine_oracle(unscaled)
        assert float(value) == pytest.approx(math.sin(unscaled / 1e8), abs=1e-12)

    def test_negative_input(self):
        value = trig.sine_oracle(-50_000_000)  # -0.5
        assert float(value) == pytest.approx(math.sin(-0.5), abs=1e-12)

    def test_truncated_series(self):
        unscaled = 78_000_000  # 0.78
        x = Fraction(unscaled, 10**8)
        two_terms = trig.truncated_series_oracle(unscaled, 2)
        assert two_terms == x - x**3 / 6

    def test_mae(self):
        assert trig.mean_absolute_error([Fraction(1)], [Fraction(3, 2)]) == 0.5
        with pytest.raises(ValueError):
            trig.mean_absolute_error([Fraction(1)], [])


class TestEndToEnd:
    def test_error_decreases_then_saturates(self):
        """More terms improve accuracy until DECIMAL truncation floors it."""
        workload = trig.build_workload(rows=25, seed=9)
        db = Database()
        db.register(workload.relation)
        truths = workload.oracle("c2")
        maes = []
        for terms in (2, 4, 8, 11):
            result = db.execute(workload.query("c2", terms), include_scan=False)
            values = [Fraction(*v.to_fraction_parts()) for (v,) in result.rows]
            maes.append(trig.mean_absolute_error(values, truths))
        assert maes[0] > maes[1] > maes[2]  # improving
        assert maes[3] < 1e-20  # deep into high precision

    def test_small_input_saturation(self):
        """Near 0.01 the error floors around 1e-28 (the s1+4 division rule)."""
        workload = trig.build_workload(rows=25, seed=9)
        db = Database()
        db.register(workload.relation)
        truths = workload.oracle("c1")
        result8 = db.execute(workload.query("c1", 8), include_scan=False)
        result11 = db.execute(workload.query("c1", 11), include_scan=False)
        mae8 = trig.mean_absolute_error(
            [Fraction(*v.to_fraction_parts()) for (v,) in result8.rows], truths
        )
        mae11 = trig.mean_absolute_error(
            [Fraction(*v.to_fraction_parts()) for (v,) in result11.rows], truths
        )
        assert mae8 < 1e-25
        assert mae11 == pytest.approx(mae8, rel=2)  # saturated, no improvement
