"""Tests for the Figure 1 workload and the TPC-H query set."""

from fractions import Fraction


from repro.engine import Database
from repro.storage import tpch
from repro.workloads import figure1, tpch_queries


class TestFigure1:
    def test_relation_specs(self):
        low = figure1.build_relation("low-p", rows=10)
        assert str(low.column("c1").column_type) == "DECIMAL(17, 5)"
        assert str(low.column("c2").column_type) == "DECIMAL(14, 2)"
        high = figure1.build_relation("high-p", rows=10)
        assert str(high.column("c1").column_type) == "DECIMAL(35, 5)"

    def test_exact_sum_oracle(self):
        relation = figure1.build_relation("low-p", rows=100)
        total, scale = figure1.exact_sum(relation)
        assert scale == 5
        db = Database()
        db.register(relation)
        result = db.execute("SELECT SUM(c1 + c2) FROM R")
        assert Fraction(*result.scalar.to_fraction_parts()) == Fraction(total, 10**scale)


class TestTpchQ1:
    def test_q1_against_row_oracle(self):
        relation = tpch.lineitem(rows=800, seed=3)
        db = Database()
        db.register(relation)
        result = db.execute(tpch_queries.Q1_SQL, include_scan=False)

        # Row-at-a-time oracle.
        qty = relation.column("l_quantity").unscaled()
        price = relation.column("l_extendedprice").unscaled()
        disc = relation.column("l_discount").unscaled()
        tax = relation.column("l_tax").unscaled()
        flag = [v.decode().strip() for v in relation.column("l_returnflag").data.tolist()]
        status = [v.decode().strip() for v in relation.column("l_linestatus").data.tolist()]
        ship = relation.column("l_shipdate").data.tolist()
        cutoff = tpch.SHIPDATE_CUTOFF

        groups = {}
        for i in range(relation.rows):
            if ship[i] > cutoff:
                continue
            key = (flag[i], status[i])
            entry = groups.setdefault(key, {"qty": 0, "base": 0, "disc_price": 0, "charge": 0, "count": 0})
            entry["qty"] += qty[i]
            entry["base"] += price[i]
            # disc_price = price * (1 - disc); scales: 2 + 2 = 4
            dp = price[i] * (100 - disc[i])
            entry["disc_price"] += dp
            # charge = disc_price * (1 + tax); scale 6
            entry["charge"] += dp * (100 + tax[i])
            entry["count"] += 1

        assert len(result.rows) == len(groups)
        for row in result.rows:
            key = (row[0], row[1])
            entry = groups[key]
            assert row[2].unscaled == entry["qty"]  # sum_qty
            assert row[3].unscaled == entry["base"]  # sum_base_price
            assert row[4].unscaled == entry["disc_price"]  # sum_disc_price
            assert row[5].unscaled == entry["charge"]  # sum_charge
            assert row[9].unscaled == entry["count"]  # count_order

        # Ordered by (returnflag, linestatus).
        keys = [(row[0], row[1]) for row in result.rows]
        assert keys == sorted(keys)

    def test_q1_avgs_consistent_with_sums(self):
        relation = tpch.lineitem(rows=400, seed=5)
        db = Database()
        db.register(relation)
        result = db.execute(tpch_queries.Q1_SQL, include_scan=False)
        for row in result.rows:
            sum_qty = Fraction(*row[2].to_fraction_parts())
            avg_qty = Fraction(*row[6].to_fraction_parts())
            count = row[9].unscaled
            exact_avg = sum_qty / count
            assert abs(avg_qty - exact_avg) < Fraction(1, 10**3)


class TestTable1Model:
    def test_parity_for_non_decimal_queries(self):
        rows = tpch_queries.table1_rows()
        for name, row in rows.items():
            profile = tpch.TPCH_PROFILES[name]
            delta = abs(row["UltraPrecise"] - row["RateupDB"]) / row["RateupDB"]
            if profile.subquery_decimal_delivery:
                assert delta > 0.2  # Q18/Q20 regress noticeably
            else:
                assert delta < 0.05  # parity

    def test_q18_q20_match_paper_direction(self):
        rows = tpch_queries.table1_rows()
        for name in ("Q18", "Q20"):
            assert rows[name]["UltraPrecise"] > rows[name]["RateupDB"]
            paper = rows[name]["UltraPrecise (paper)"]
            assert abs(rows[name]["UltraPrecise"] - paper) / paper < 0.25
