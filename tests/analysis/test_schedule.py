"""Tests for the schedule lint (misordered sums, surviving constant subtrees)."""

from repro.analysis.schedule import CONSTANT_SUBTREE, MISORDERED_SUM, check_schedule_ir
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, compile_expression

SCHEMA = {"a": DecimalSpec(8, 0), "b": DecimalSpec(8, 0), "c": DecimalSpec(8, 4)}


class TestMisorderedSums:
    def test_unscheduled_chain_warns(self):
        compiled = compile_expression(
            "a + c + b", SCHEMA, JitOptions(alignment_scheduling=False)
        )
        report = compiled.kernel.analysis
        assert MISORDERED_SUM in report.rules()
        assert not report.has_errors  # wasted alignments, not wrong answers

    def test_scheduled_chain_is_clean(self):
        compiled = compile_expression("a + c + b", SCHEMA)
        assert MISORDERED_SUM not in compiled.kernel.analysis.rules()

    def test_already_optimal_order_is_clean(self):
        compiled = compile_expression(
            "a + b + c", SCHEMA, JitOptions(alignment_scheduling=False)
        )
        assert MISORDERED_SUM not in compiled.kernel.analysis.rules()


class TestSurvivingConstants:
    def test_constant_product_in_ir_warns(self):
        spec = DecimalSpec(4, 0)
        kernel = ir.KernelIR(
            name="hand",
            expression_sql="2 * 3",
            instructions=[
                ir.LoadConst(0, spec, False, 2),
                ir.LoadConst(1, spec, False, 3),
                ir.MulOp(2, spec, 0, 1),
                ir.StoreResult(2, spec, 2),
            ],
            input_columns={},
            result_spec=spec,
            register_words=3,
        )
        [finding] = [
            d for d in check_schedule_ir(kernel) if d.rule == CONSTANT_SUBTREE
        ]
        assert finding.instruction == 2

    def test_folded_pipeline_kernels_are_clean(self):
        compiled = compile_expression("a + 2 * 3", {"a": DecimalSpec(8, 0)})
        assert CONSTANT_SUBTREE not in compiled.kernel.analysis.rules()
        # The optimiser folded 2 * 3 before emission: no MulOp remains.
        assert compiled.kernel.count(ir.MulOp) == 0
