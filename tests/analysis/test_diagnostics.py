"""Tests for the diagnostics framework (severities, reports, formatting)."""

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity


class TestDiagnostic:
    def test_format_with_instruction(self):
        diagnostic = Diagnostic(
            "RANGE001", Severity.ERROR, "register overflows", kernel="calc", instruction=3
        )
        assert diagnostic.format() == "error[RANGE001] calc[3]: register overflows"

    def test_format_kernel_level(self):
        diagnostic = Diagnostic("LIFE005", Severity.WARNING, "peak mismatch", kernel="calc")
        assert diagnostic.format() == "warning[LIFE005] calc: peak mismatch"

    def test_format_without_kernel_name(self):
        diagnostic = Diagnostic("SCHED001", Severity.INFO, "note")
        assert diagnostic.format().startswith("info[SCHED001] <kernel>:")


class TestAnalysisReport:
    def _report(self):
        report = AnalysisReport(kernel="k")
        report.add("RANGE001", Severity.ERROR, "overflow", instruction=1)
        report.add("RANGE002", Severity.WARNING, "wide", instruction=2)
        report.add("RANGE004", Severity.INFO, "fast", instruction=3)
        report.add("RANGE002", Severity.WARNING, "wide again", instruction=4)
        return report

    def test_severity_buckets(self):
        report = self._report()
        assert [d.rule for d in report.errors] == ["RANGE001"]
        assert [d.rule for d in report.warnings] == ["RANGE002", "RANGE002"]
        assert [d.rule for d in report.infos] == ["RANGE004"]
        assert report.has_errors

    def test_collects_all_instead_of_bailing(self):
        assert len(self._report().diagnostics) == 4

    def test_rules_are_distinct_in_order(self):
        assert self._report().rules() == ["RANGE001", "RANGE002", "RANGE004"]

    def test_format_min_severity_filters(self):
        report = self._report()
        assert len(report.format(Severity.INFO).splitlines()) == 4
        assert len(report.format(Severity.WARNING).splitlines()) == 3
        assert len(report.format(Severity.ERROR).splitlines()) == 1

    def test_empty_report(self):
        report = AnalysisReport(kernel="k")
        assert not report.has_errors
        assert report.rules() == []
