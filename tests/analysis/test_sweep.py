"""Tests for the repo-wide analysis sweep (``python -m repro.analysis``)."""

from repro.analysis.sweep import iter_workload_kernels, main, run_sweep


class TestIteration:
    def test_figure1_yields_both_configurations(self):
        swept = list(iter_workload_kernels(["figure1"]))
        assert {item.workload for item in swept} == {
            "figure1/low-p",
            "figure1/high-p",
        }
        for item in swept:
            assert item.report.kernel == item.kernel
            assert not item.report.has_errors


class TestGate:
    def test_figure1_sweep_is_clean(self, capsys):
        assert run_sweep(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "OK: every workload kernel is provably overflow-free" in out

    def test_cli_entry_point(self, capsys):
        assert main(["--workload", "figure1", "--min-severity", "error"]) == 0
        assert "analyzed" in capsys.readouterr().out

    def test_cli_rejects_unknown_workload(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["--workload", "nonsense"])
