"""End-to-end tests for statically-routed division/modulo kernels.

The acceptance bar for the analyzer's feedback loop: a kernel whose
divisor is statically proven single-word (or uint64-safe) executes the
annotated route bit-exactly against both the dynamic dispatcher and the
preserved row-loop reference.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import AnalysisReport, Severity
from repro.core.decimal import reference
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, compile_expression
from repro.errors import AnalysisError
from repro.gpusim import executor


def _strip_fast_paths(kernel: ir.KernelIR) -> ir.KernelIR:
    stripped = dataclasses.replace(kernel)
    stripped.instructions = [
        dataclasses.replace(i, fast_path=None)
        if isinstance(i, (ir.DivOp, ir.ModOp))
        else i
        for i in kernel.instructions
    ]
    return stripped


def _column(values, spec):
    return DecimalVector.from_unscaled(values, spec).to_compact()


class TestBitExactExecution:
    @pytest.mark.parametrize(
        "expression,spec,path",
        [
            ("x / 7", DecimalSpec(9, 2), "native64"),
            ("x / 120", DecimalSpec(30, 2), "short"),
            ("x % 97", DecimalSpec(30, 0), "short"),
        ],
    )
    def test_static_route_matches_dynamic_and_reference(self, expression, spec, path):
        compiled = compile_expression(expression, {"x": spec})
        [op] = [
            i
            for i in compiled.kernel.instructions
            if isinstance(i, (ir.DivOp, ir.ModOp))
        ]
        assert op.fast_path == path

        rng = np.random.default_rng(7)
        cap = min(spec.max_unscaled, 10**24)
        # Compose wide magnitudes from two int64-sized draws (numpy caps at
        # int64) so the wide specs actually exercise multi-word dividends.
        low = rng.integers(0, 10**12, 257)
        high = rng.integers(0, max(cap // 10**12, 1), 257)
        values = [
            (int(h) * 10**12 + int(v)) % cap * (1 if i % 2 else -1)
            for i, (h, v) in enumerate(zip(high, low))
        ]
        values[0] = 0
        values[1] = cap - 1
        columns = {"x": _column(values, spec)}

        static = executor.execute(compiled.kernel, columns, len(values)).result
        dynamic = executor.execute(
            _strip_fast_paths(compiled.kernel), columns, len(values)
        ).result

        assert static.spec == dynamic.spec
        assert np.array_equal(static.words, dynamic.words)
        assert np.array_equal(
            np.asarray(static.negative, bool), np.asarray(dynamic.negative, bool)
        )

    def test_static_short_division_matches_rowloop_reference(self):
        # The raw vectorised route against the preserved pre-vectorisation
        # row loop, on operands where ``short`` is the proven class.
        from repro.core.decimal import vectorized as vz

        spec_a = DecimalSpec(30, 2)
        spec_b = DecimalSpec(5, 0)
        rng = np.random.default_rng(11)
        a_vals = [int(v) * 10**12 - 5 * 10**13 for v in rng.integers(0, 10**6, 200)]
        b_vals = [int(v) for v in rng.integers(1, 9999, 200)]
        a = DecimalVector.from_unscaled(a_vals, spec_a)
        b = DecimalVector.from_unscaled(b_vals, spec_b)

        static = vz.div(a, b, fast_path="short")
        rowloop = reference.div_rowloop(a, b)
        assert np.array_equal(static.words, rowloop.words)
        assert np.array_equal(
            np.asarray(static.negative, bool), np.asarray(rowloop.negative, bool)
        )


class TestStrictMode:
    def test_strict_mode_raises_on_analysis_errors(self, monkeypatch):
        # The pipeline resolves ``analyze_kernel`` through the package at
        # call time (the import is deferred to break the cycle), so the
        # package attribute is the seam to poison.
        import repro.analysis

        def poisoned(kernel, tree=None):
            report = AnalysisReport(kernel=kernel.name)
            report.add("RANGE001", Severity.ERROR, "injected overflow", instruction=0)
            return report

        monkeypatch.setattr(repro.analysis, "analyze_kernel", poisoned)
        with pytest.raises(AnalysisError) as excinfo:
            compile_expression(
                "a + b",
                {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)},
                JitOptions(strict_analysis=True),
            )
        assert "RANGE001" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_default_mode_attaches_report_without_raising(self):
        compiled = compile_expression(
            "x / y", {"x": DecimalSpec(9, 2), "y": DecimalSpec(5, 0)}
        )
        assert compiled.kernel.analysis is not None
        assert compiled.kernel.analysis.has_errors  # column divisor can overflow

    def test_strict_option_changes_cache_key(self):
        assert JitOptions(strict_analysis=True).cache_key_part() != (
            JitOptions().cache_key_part()
        )


class TestApplyFastPathsImmutability:
    def test_input_kernel_is_never_mutated(self):
        from repro.analysis import apply_fast_paths
        from repro.analysis.ranges import analyze_ranges

        compiled = compile_expression("x / 7", {"x": DecimalSpec(9, 2)})
        # A cache-shaped scenario: the same kernel object is held by two
        # parties; annotating one holder's view must not leak to the other.
        shared = _strip_fast_paths(compiled.kernel)
        original_instructions = shared.instructions
        original_items = list(shared.instructions)
        _findings, fast_paths = analyze_ranges(shared)
        assert fast_paths  # the x / 7 divisor is statically provable

        annotated = apply_fast_paths(shared, fast_paths)
        assert annotated is not shared
        assert annotated.instructions is not shared.instructions
        # The shared holder's view is bit-identical to before the rewrite.
        assert shared.instructions is original_instructions
        assert shared.instructions == original_items
        assert all(
            op.fast_path is None
            for op in shared.instructions
            if isinstance(op, (ir.DivOp, ir.ModOp))
        )
        # ... while the returned copy carries the proven routes.
        assert any(
            op.fast_path
            for op in annotated.instructions
            if isinstance(op, (ir.DivOp, ir.ModOp))
        )

    def test_no_change_returns_the_same_kernel(self):
        from repro.analysis import apply_fast_paths
        from repro.analysis.ranges import analyze_ranges

        compiled = compile_expression("x / 7", {"x": DecimalSpec(9, 2)})
        _findings, fast_paths = analyze_ranges(compiled.kernel)
        # The pipeline already applied these routes: re-applying is a no-op
        # and must not copy.
        assert apply_fast_paths(compiled.kernel, fast_paths) is compiled.kernel
