"""Tests for the interval/range analysis pass (overflow proofs, fast paths)."""

from repro.analysis import analyze_kernel
from repro.analysis.ranges import (
    NATIVE64,
    OVER_ALLOCATED,
    POSSIBLE_OVERFLOW,
    SHORT_DIVISOR,
    _abs_interval,
    _div_interval,
    _mod_interval,
    _rescale_interval,
    analyze_ranges,
)
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import compile_expression


def _kernel(instructions, input_columns, result_spec, name="adversarial"):
    return ir.KernelIR(
        name=name,
        expression_sql="<test>",
        instructions=instructions,
        input_columns=input_columns,
        result_spec=result_spec,
        register_words=sum(i.spec.words for i in instructions),
    )


class TestAdversarialOverflow:
    def test_under_allocated_product_is_an_error(self):
        # DECIMAL(10, 0) allocates two words, but the product of two such
        # columns can reach ~1e20, which needs three: the analyzer must
        # refuse to certify this hand-built kernel.
        spec = DecimalSpec(10, 0)
        kernel = _kernel(
            [
                ir.LoadColumn(0, spec, "a"),
                ir.LoadColumn(1, spec, "b"),
                ir.MulOp(2, spec, 0, 1),
                ir.StoreResult(2, spec, 2),
            ],
            {"a": spec, "b": spec},
            spec,
        )
        report = analyze_kernel(kernel)
        assert report.has_errors
        assert POSSIBLE_OVERFLOW in report.rules()
        [finding] = report.errors
        assert finding.instruction == 2
        assert "2-word container" in finding.message

    def test_column_divisor_can_overflow_the_inferred_container(self):
        # A column divisor's interval includes +/-1 (scale 0), so x / y can
        # exceed DECIMAL division's inferred result container -- a true
        # positive the dynamic engine handles by wrapping at the container.
        compiled = compile_expression(
            "x / y", {"x": DecimalSpec(9, 2), "y": DecimalSpec(5, 0)}
        )
        report = compiled.kernel.analysis
        assert POSSIBLE_OVERFLOW in report.rules()
        # Proven fast-path facts are reported, but never applied to the IR
        # while the kernel has range errors.
        assert all(
            op.fast_path is None
            for op in compiled.kernel.instructions
            if isinstance(op, ir.DivOp)
        )

    def test_generated_addition_kernels_are_overflow_free(self):
        for expression in ("a + b", "a - b * 3", "(a + b) * (a - b)"):
            compiled = compile_expression(
                expression, {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)}
            )
            assert not compiled.kernel.analysis.has_errors, expression


class TestOverAllocation:
    def test_wide_spec_for_small_sum_warns(self):
        narrow = DecimalSpec(3, 0)
        wide = DecimalSpec(38, 0)
        kernel = _kernel(
            [
                ir.LoadColumn(0, narrow, "a"),
                ir.LoadColumn(1, narrow, "b"),
                ir.AddOp(2, wide, 0, 1),
                ir.StoreResult(2, wide, 2),
            ],
            {"a": narrow, "b": narrow},
            wide,
        )
        report = analyze_kernel(kernel)
        assert not report.has_errors
        assert OVER_ALLOCATED in report.rules()
        [finding] = [d for d in report.warnings if d.rule == OVER_ALLOCATED]
        assert "fits 1 word(s)" in finding.message

    def test_loads_are_not_flagged(self):
        # Only arithmetic results are width-linted: a load's width is the
        # column's declared type, not the analyzer's business.
        wide = DecimalSpec(38, 0)
        kernel = _kernel(
            [ir.LoadColumn(0, wide, "a"), ir.StoreResult(0, wide, 0)],
            {"a": wide},
            wide,
        )
        findings, _ = analyze_ranges(kernel)
        assert findings == []


class TestDivisionFastPaths:
    def test_native64_for_narrow_constant_division(self):
        compiled = compile_expression("x / 7", {"x": DecimalSpec(9, 2)})
        [div] = [i for i in compiled.kernel.instructions if isinstance(i, ir.DivOp)]
        assert div.fast_path == "native64"
        assert NATIVE64 in compiled.kernel.analysis.rules()
        assert not compiled.kernel.analysis.has_errors

    def test_short_for_wide_dividend_single_word_divisor(self):
        compiled = compile_expression("x / 120", {"x": DecimalSpec(30, 2)})
        [div] = [i for i in compiled.kernel.instructions if isinstance(i, ir.DivOp)]
        assert div.fast_path == "short"
        assert SHORT_DIVISOR in compiled.kernel.analysis.rules()

    def test_modulo_routes_mirror_division(self):
        narrow = compile_expression("x % 97", {"x": DecimalSpec(9, 0)})
        wide = compile_expression("x % 97", {"x": DecimalSpec(30, 0)})
        [mod_narrow] = [i for i in narrow.kernel.instructions if isinstance(i, ir.ModOp)]
        [mod_wide] = [i for i in wide.kernel.instructions if isinstance(i, ir.ModOp)]
        assert mod_narrow.fast_path == "native64"
        assert mod_wide.fast_path == "short"

    def test_annotation_appears_in_rendered_source(self):
        compiled = compile_expression("x / 120", {"x": DecimalSpec(30, 2)})
        assert "// short fast path" in compiled.kernel.source


class TestIntervalTransfer:
    def test_div_interval_uses_min_nonzero_divisor(self):
        assert _div_interval((-100, 100), (-5, 5), 10) == (-1000, 1000)
        assert _div_interval((0, 100), (2, 5), 1) == (0, 50)
        assert _div_interval((-100, 0), (2, 5), 1) == (-50, 0)

    def test_mod_interval_sign_follows_dividend(self):
        assert _mod_interval((0, 50), (-7, 7)) == (0, 6)
        assert _mod_interval((-50, -1), (-7, 7)) == (-6, 0)
        assert _mod_interval((-10, 50), (-7, 7)) == (-6, 6)
        # Small dividends tighten the bound below |b| - 1.
        assert _mod_interval((0, 3), (0, 1000)) == (0, 3)

    def test_rescale_interval_brackets_all_modes(self):
        assert _rescale_interval((-15, 27), 2, 0) == (-1, 1)
        assert _rescale_interval((100, 199), 2, 0) == (1, 2)
        assert _rescale_interval((-7, 7), 0, 2) == (-700, 700)

    def test_abs_interval(self):
        assert _abs_interval((-5, 3)) == (0, 5)
        assert _abs_interval((2, 9)) == (2, 9)
        assert _abs_interval((-9, -2)) == (2, 9)
