"""Tests for the def-use/lifetime pass (dead code, pool discipline)."""

from repro.analysis import analyze_kernel
from repro.analysis.lifetime import (
    DEAD_STORE,
    DOUBLE_DEFINE,
    PEAK_WORDS_MISMATCH,
    UNUSED_LOAD,
    USE_AFTER_RELEASE,
    check_lifetime,
)
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, compile_expression

SPEC = DecimalSpec(6, 1)


def _kernel(instructions, released_after=None, register_words=8):
    return ir.KernelIR(
        name="hand",
        expression_sql="<test>",
        instructions=instructions,
        input_columns={"a": SPEC, "b": SPEC},
        result_spec=instructions[-1].spec,
        register_words=register_words,
        released_after=released_after,
    )


class TestDeadCode:
    def test_dead_store(self):
        kernel = _kernel(
            [
                ir.LoadColumn(0, SPEC, "a"),
                ir.LoadColumn(1, SPEC, "b"),
                ir.AddOp(2, DecimalSpec(7, 1), 0, 1),  # computed, never read
                ir.StoreResult(0, SPEC, 0),
            ]
        )
        findings = check_lifetime(kernel)
        assert DEAD_STORE in {d.rule for d in findings}
        [dead] = [d for d in findings if d.rule == DEAD_STORE]
        assert dead.instruction == 2

    def test_unused_load(self):
        kernel = _kernel(
            [
                ir.LoadColumn(0, SPEC, "a"),
                ir.LoadColumn(1, SPEC, "b"),  # never read
                ir.StoreResult(0, SPEC, 0),
            ]
        )
        findings = check_lifetime(kernel)
        assert UNUSED_LOAD in {d.rule for d in findings}

    def test_double_define_is_an_error(self):
        kernel = _kernel(
            [
                ir.LoadColumn(0, SPEC, "a"),
                ir.LoadColumn(0, SPEC, "b"),  # redefines r0
                ir.StoreResult(0, SPEC, 0),
            ]
        )
        [double] = [d for d in check_lifetime(kernel) if d.rule == DOUBLE_DEFINE]
        assert double.instruction == 1

    def test_use_after_release_is_an_error(self):
        kernel = _kernel(
            [
                ir.LoadColumn(0, SPEC, "a"),
                ir.NegOp(1, SPEC, 0),
                ir.NegOp(2, SPEC, 0),  # r0 was released after instruction 1
                ir.StoreResult(2, SPEC, 2),
            ],
            released_after={0: 1, 1: 3},
        )
        findings = check_lifetime(kernel)
        [stale] = [d for d in findings if d.rule == USE_AFTER_RELEASE]
        assert stale.instruction == 2


class TestGeneratedKernels:
    def test_compiled_kernels_are_clean(self):
        for expression in ("a + b", "a * b - 2", "a / 3 + b"):
            for options in (JitOptions(), JitOptions(subexpression_elimination=True)):
                kernel = compile_expression(
                    expression,
                    {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)},
                    options,
                ).kernel
                assert check_lifetime(kernel) == [], expression

    def test_tampered_register_words_flags_peak_mismatch(self):
        kernel = compile_expression(
            "a + b", {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)}
        ).kernel
        kernel.register_words += 3
        report = analyze_kernel(kernel)
        assert PEAK_WORDS_MISMATCH in report.rules()
        assert not report.has_errors  # a width misestimate is waste, not unsoundness
