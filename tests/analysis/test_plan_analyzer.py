"""Plan-level static analyzer: seeded bugs are caught, clean plans prove out.

The acceptance bar for each pass: a deliberately broken rewrite rule (a
pushdown that drops a conjunct) is caught by the differential audit; a
tampered physical plan trips the schema pass; a real query's precision
proof agrees with the kernel range pass (``PREC004``); and strict mode
escalates analyzer errors to :class:`repro.errors.PlanAnalysisError`.
"""

import pytest

from repro.analysis.plan import analyze_plan, check_rewrites
from repro.analysis.plan import precision, rewrite_audit, schema_flow
from repro.engine import Database
from repro.engine.plan.cost import OptimizerConfig
from repro.engine.plan.logical import LogicalFilter, _mentions, _referenced_columns
from repro.engine.plan.physical import FilterOp, ProjectOp, ScanOp, SortOp
from repro.engine.plan.planner import plan_query
from repro.engine.plan.rules import RewriteEvent, RewriteRule, default_rules
from repro.engine.sql.parser import parse_query
from repro.errors import PlanAnalysisError


def make_db() -> Database:
    db = Database(simulate_rows=1_000_000)
    db.create_table(
        "fact",
        {
            "f_key": "INT",
            "f_qty": "INT",
            "f_amount": "DECIMAL(12, 2)",
            "f_rate": "DECIMAL(6, 4)",
            "f_tag": "CHAR(2)",
        },
        rows=[(k % 4, k, f"{k}.25", f"0.{k:04d}", "aa") for k in range(12)],
    )
    db.create_table(
        "dim",
        {"d_key": "INT", "d_weight": "DECIMAL(8, 2)"},
        rows=[(k, f"{k}.50") for k in range(4)],
    )
    return db


def planned(db: Database, sql: str, optimizer=None):
    """Plan through the real session statistics, returning the PhysicalPlan."""
    query = parse_query(sql)
    relation = db.catalog.get(query.table)
    joined = {join.table: db.catalog.get(join.table) for join in query.joins}
    return plan_query(
        query,
        relation.column_names,
        {name: rel.column_names for name, rel in joined.items()},
        stats=db._plan_stats(relation, joined, relation.rows),
        optimizer=optimizer if optimizer is not None else OptimizerConfig(),
        label=query.table,
    ), db._plan_stats(relation, joined, relation.rows)


class BrokenPushdownRule(RewriteRule):
    """A seeded rule bug: 'pushdown' that silently drops a conjunct."""

    name = "filter-pushdown"

    def __init__(self) -> None:
        self.fired = False

    def apply(self, nodes, stats=None):
        if self.fired:
            return None
        for node in nodes:
            if isinstance(node, LogicalFilter) and node.predicates:
                node.predicates.pop()
                self.fired = True
                return nodes, "pushed 1 conjunct (dropped it, actually)"
        return None


class TestSeededRuleBugs:
    SQL = "SELECT f_qty, f_amount FROM fact WHERE f_qty > 3 AND f_amount < 10.00"

    def test_conjunct_dropping_pushdown_is_caught(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.plan.planner.default_rules",
            lambda **kwargs: [BrokenPushdownRule()],
        )
        db = make_db()
        plan, _stats = planned(db, self.SQL)
        assert plan.analysis is not None
        rules = {d.rule for d in plan.analysis.errors}
        assert rewrite_audit.PUSHDOWN_CONJUNCTS in rules, plan.analysis.format()

    def test_strict_mode_raises(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.plan.planner.default_rules",
            lambda **kwargs: [BrokenPushdownRule()],
        )
        db = make_db()
        with pytest.raises(PlanAnalysisError) as caught:
            planned(db, self.SQL, optimizer=OptimizerConfig(strict_plan_analysis=True))
        assert caught.value.report is not None
        assert caught.value.report.has_errors


class TestSeededPlanTampering:
    def test_scan_losing_a_needed_column_is_plan001(self):
        db = make_db()
        plan, stats = planned(db, "SELECT f_qty FROM fact WHERE f_amount < 10.00")
        scan = next(op for op in plan if isinstance(op, ScanOp))
        scan.columns.remove("f_amount")
        scan.predicates = None  # leave only the batch-availability bug
        report = analyze_plan(plan, stats=stats)
        assert schema_flow.MISSING_COLUMN in {d.rule for d in report.errors}

    def test_projection_dropping_a_sort_key_is_plan002(self):
        db = make_db()
        plan, stats = planned(db, "SELECT f_qty FROM fact ORDER BY f_amount")
        project = next(op for op in plan if isinstance(op, ProjectOp))
        assert "f_amount" in project.carry  # sort-key retention put it there
        project.carry.remove("f_amount")
        report = analyze_plan(plan, stats=stats)
        assert schema_flow.SORT_KEY_LOST in {d.rule for d in report.errors}

    def test_unsound_zone_pushdown_is_plan004(self):
        db = make_db()
        plan, stats = planned(
            db, "SELECT f_qty FROM fact WHERE f_qty > 3 AND f_qty < 9"
        )
        scan = next(op for op in plan if isinstance(op, ScanOp))
        fltr = next(op for op in plan if isinstance(op, FilterOp))
        # Pretend the planner pushed the same conjunct twice: not a
        # sub-multiset of the filter, so pruning could drop kept rows.
        scan.predicates = [fltr.predicates[0], fltr.predicates[0]]
        report = analyze_plan(plan, stats=stats)
        assert schema_flow.UNSOUND_ZONE_PUSHDOWN in {d.rule for d in report.errors}

    def test_sort_key_nowhere_is_plan002_without_project(self):
        db = make_db()
        plan, stats = planned(db, "SELECT f_qty FROM fact ORDER BY f_qty")
        sort = next(op for op in plan if isinstance(op, SortOp))
        object.__setattr__(sort.keys[0], "column", "f_ghost")
        report = analyze_plan(plan, stats=stats)
        assert schema_flow.SORT_KEY_LOST in {d.rule for d in report.errors}


class TestRewriteAuditUnits:
    def test_reorder_without_aggregate_gate_is_rule004(self):
        snapshot = (
            ("scan", "fact", ("f_key", "f_amount")),
            ("join", "dim", "f_key", "d_key", ("d_weight",), ()),
            ("project", ("f_amount",), ("f_amount",), ()),
        )
        event = RewriteEvent("join-reorder", "moved dim first", snapshot, snapshot)
        rules = {d.rule for d in check_rewrites([event])}
        assert rewrite_audit.REORDER_GATE in rules

    def test_pruning_that_grows_a_ship_set_is_rule005(self):
        before = (("scan", "fact", ("f_key",)),)
        after = (("scan", "fact", ("f_key", "f_amount")),)
        event = RewriteEvent("projection-pruning", "pruned", before, after)
        rules = {d.rule for d in check_rewrites([event])}
        assert rewrite_audit.PRUNING_GREW in rules

    def test_events_without_snapshots_are_skipped(self):
        assert check_rewrites([RewriteEvent("filter-pushdown", "legacy")]) == []


class TestPrecisionProofs:
    def test_plan_and_kernel_proofs_agree_on_tpch_q6(self):
        from repro.storage import tpch
        from repro.workloads.tpch_queries import Q6_SQL

        db = Database(simulate_rows=10_000_000)
        db.register(tpch.lineitem(rows=16, seed=11))
        report = db.explain(Q6_SQL).plan_diagnostics
        assert report is not None and not report.has_errors
        rules = {d.rule for d in report.infos}
        assert precision.EXPR_PROOF in rules  # PREC004: proofs cross-checked
        assert precision.AGGREGATE_PROOF in rules

    def test_explain_surfaces_plan_diagnostics(self):
        from repro.storage import tpch
        from repro.workloads.tpch_queries import Q6_SQL

        db = Database(simulate_rows=10_000_000)
        db.register(tpch.lineitem(rows=16, seed=11))
        text = db.explain(Q6_SQL).format()
        assert "plan diagnostics:" in text
        assert "PREC004" in text


class TestMentionsTokenMatching:
    def test_prefix_of_longer_identifier_is_not_a_mention(self):
        assert not _mentions("o_orderkey2 + 1", "o_orderkey")
        assert _mentions("o_orderkey + 1", "o_orderkey")
        assert _mentions("SUM(o_orderkey)", "o_orderkey")

    def test_referenced_columns_skip_prefix_collisions(self):
        query = parse_query("SELECT o_orderkey2 FROM t")
        available = ["o_orderkey", "o_orderkey2"]
        assert _referenced_columns(query, available) == ["o_orderkey2"]
