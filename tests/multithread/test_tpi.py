"""Tests for TPI load planning (Listing 3) and the division restriction."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.multithread import tpi
from repro.errors import TpiRestrictionError


class TestLoadPlan:
    def test_listing3_example(self):
        """DECIMAL(64, 32) at TPI=4: Lb=27, lt=2, 3 full threads, 3-byte tail."""
        spec = DecimalSpec(64, 32)
        assert spec.compact_bytes == 27
        plan = tpi.plan_load(spec, 4)
        assert plan.words_per_thread == 2
        assert plan.full_threads == 3
        assert plan.tail_bytes == 3
        assert not plan.is_aligned

    def test_aligned_no_branch(self):
        """When Lb divides evenly, no tail branch is generated."""
        spec = DecimalSpec(38, 0)  # Lb = 16
        plan = tpi.plan_load(spec, 4)
        assert plan.is_aligned
        code = tpi.render_load_code(plan)
        assert "else if" not in code
        assert "No following branch" in code

    def test_listing3_code_render(self):
        plan = tpi.plan_load(DecimalSpec(64, 32), 4)
        code = tpi.render_load_code(plan)
        assert "threadIdx.x & 3" in code
        assert "uint32_t v[2]" in code
        assert "g_tid == 3" in code

    def test_every_byte_covered(self):
        for precision in (9, 18, 38, 76, 153, 307):
            for group_size in tpi.SUPPORTED_TPI:
                spec = DecimalSpec(precision, 2)
                plan = tpi.plan_load(spec, group_size)
                chunk = 4 * plan.words_per_thread
                covered = plan.full_threads * chunk + plan.tail_bytes
                assert covered >= spec.compact_bytes

    def test_rejects_unsupported_tpi(self):
        with pytest.raises(TpiRestrictionError):
            tpi.plan_load(DecimalSpec(10, 0), 5)


class TestDivisionRestriction:
    def test_paper_case(self):
        """LEN/TPI <= TPI: 32/4 > 4 is the paper's absent data point."""
        assert not tpi.division_supported(32, 4)
        assert tpi.division_supported(32, 8)
        assert tpi.division_supported(32, 16)
        with pytest.raises(TpiRestrictionError):
            tpi.check_division_restriction(32, 4)

    def test_single_threaded_always_allowed(self):
        assert tpi.division_supported(32, 1)

    @pytest.mark.parametrize("length,group", [(2, 4), (4, 4), (8, 4), (16, 4)])
    def test_small_len_ok(self, length, group):
        assert tpi.division_supported(length, group)
