"""Tests for CGBN-style thread-group arithmetic (section III-E1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.multithread import cgbn
from repro.core.multithread.cgbn import GroupStats, GroupValue
from repro.errors import DivisionByZeroError, TpiRestrictionError

SPEC = DecimalSpec(30, 2)


def group(value, tpi=8, spec=SPEC):
    return GroupValue.from_unscaled(value, spec, tpi)


class TestDistribution:
    @given(st.integers(min_value=-(10**30 - 1), max_value=10**30 - 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, value):
        for tpi in (1, 4, 8, 16, 32):
            assert group(value, tpi).unscaled == value

    def test_lane_slices_are_contiguous(self):
        value = group((1 << 100) + 12345, tpi=4)
        flat = [word for lane in value.lanes for word in lane]
        assert flat[: SPEC.words] == value.gather()

    def test_rejects_bad_tpi(self):
        with pytest.raises(TpiRestrictionError):
            GroupValue.from_unscaled(1, SPEC, 3)

    def test_mismatched_tpi_rejected(self):
        with pytest.raises(TpiRestrictionError):
            cgbn.add(group(1, 4), group(1, 8), SPEC)


@st.composite
def operand_pairs(draw):
    bound = SPEC.max_unscaled
    a = draw(st.integers(min_value=-bound, max_value=bound))
    b = draw(st.integers(min_value=-bound, max_value=bound))
    tpi = draw(st.sampled_from([1, 4, 8, 16]))
    return a, b, tpi


class TestArithmetic:
    @given(operand_pairs())
    @settings(max_examples=80, deadline=None)
    def test_add(self, case):
        a, b, tpi = case
        result_spec = inference.add_result(SPEC, SPEC)
        out = cgbn.add(group(a, tpi), group(b, tpi), result_spec)
        assert out.unscaled == a + b

    @given(operand_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sub(self, case):
        a, b, tpi = case
        result_spec = inference.add_result(SPEC, SPEC)
        out = cgbn.sub(group(a, tpi), group(b, tpi), result_spec)
        assert out.unscaled == a - b

    @given(operand_pairs())
    @settings(max_examples=60, deadline=None)
    def test_mul(self, case):
        a, b, tpi = case
        result_spec = inference.mul_result(SPEC, SPEC)
        out = cgbn.mul(group(a, tpi), group(b, tpi), result_spec)
        assert out.unscaled == a * b

    @given(operand_pairs())
    @settings(max_examples=60, deadline=None)
    def test_compare(self, case):
        a, b, tpi = case
        assert cgbn.compare(group(a, tpi), group(b, tpi)) == (a > b) - (a < b)

    @given(operand_pairs())
    @settings(max_examples=40, deadline=None)
    def test_div(self, case):
        a, b, tpi = case
        if b == 0:
            return
        result_spec = inference.div_result(SPEC, SPEC)
        prescale = inference.div_prescale(SPEC)
        if result_spec.words / tpi > tpi:
            return  # restriction covered separately
        out = cgbn.div(group(a, tpi), group(b, tpi), result_spec, prescale)
        expected = abs(a) * 10**prescale // abs(b)
        expected %= 1 << (32 * result_spec.words)
        sign = -1 if (a < 0) != (b < 0) and expected else 1
        assert out.unscaled == sign * expected

    def test_div_by_zero(self):
        result_spec = inference.div_result(SPEC, SPEC)
        with pytest.raises(DivisionByZeroError):
            cgbn.div(group(1), group(0), result_spec, 4)


class TestRestriction:
    def test_len_over_tpi_must_not_exceed_tpi(self):
        """The paper's missing Figure 13 cell: TPI=4 cannot divide LEN=32."""
        wide = DecimalSpec(300, 2)  # 32 words
        result_spec = inference.div_result(wide, SPEC)
        a = GroupValue.from_unscaled(10**200, wide, 4)
        b = GroupValue.from_unscaled(12345, wide, 4)
        with pytest.raises(TpiRestrictionError):
            cgbn.div(a, b, result_spec, 6)

    def test_tpi8_handles_len32(self):
        wide = DecimalSpec(290, 0)
        result_spec = inference.div_result(wide, DecimalSpec(9, 0))
        a = GroupValue.from_unscaled(10**200, wide, 8)
        b = GroupValue.from_unscaled(123456789, wide, 8)
        out = cgbn.div(a, b, result_spec, 4)
        expected = (10**200 * 10**4 // 123456789) % (1 << (32 * result_spec.words))
        assert out.unscaled == expected


class TestCommunicationCounters:
    def test_same_sign_add_counts_ballots(self):
        stats = GroupStats()
        result_spec = inference.add_result(SPEC, SPEC)
        cgbn.add(group(1, 8), group(2, 8), result_spec, stats)
        assert stats.ballots >= 8  # one carry vote per thread slice
        assert stats.broadcasts >= 2  # sign exchange

    def test_mul_broadcasts_operand_words(self):
        stats = GroupStats()
        result_spec = inference.mul_result(SPEC, SPEC)
        cgbn.mul(group(10**20, 8), group(10**9, 8), result_spec, stats)
        assert stats.broadcasts >= SPEC.words

    def test_carry_crossing_slices_shuffles(self):
        # 2**96 - 1 has three all-ones limbs; +1 ripples a carry across
        # every thread slice boundary (one limb per thread at TPI=8).
        stats = GroupStats()
        result_spec = inference.add_result(SPEC, SPEC)
        cgbn.add(group(2**96 - 1, 8), group(1, 8), result_spec, stats)
        assert stats.shuffles > 0
