"""Tests for the multi-pass multi-threaded aggregation (section III-E2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.multithread import BlockPlan, aggregate
from repro.errors import MultithreadError
from repro.gpusim.device import DEFAULT_DEVICE

SPEC = DecimalSpec(11, 7)


class TestBlockPlan:
    def test_paper_sizing_formulas(self):
        """Ng = Tmax/TPI; nt = floor(S / (Ng*(4*Lw+1))); nT = nt*Ng."""
        plan = BlockPlan.for_spec(result_words=2, tpi=8, device=DEFAULT_DEVICE)
        ng = DEFAULT_DEVICE.max_threads_per_block // 8
        nt = DEFAULT_DEVICE.shared_memory_per_block // (ng * (4 * 2 + 1))
        assert plan.groups_per_block == ng
        assert plan.values_per_group == nt
        assert plan.values_per_block == nt * ng

    def test_wider_values_fewer_per_block(self):
        narrow = BlockPlan.for_spec(2, 8)
        wide = BlockPlan.for_spec(32, 8)
        assert wide.values_per_block < narrow.values_per_block

    def test_shared_memory_respected(self):
        for words in (2, 4, 8, 16, 32):
            plan = BlockPlan.for_spec(words, 8)
            used = plan.groups_per_block * plan.values_per_group * (4 * words + 1)
            assert used <= DEFAULT_DEVICE.shared_memory_per_block


class TestCorrectness:
    @given(st.lists(st.integers(min_value=-(10**10), max_value=10**10), min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches(self, values):
        run = aggregate(values, SPEC, "sum", tpi=8)
        assert run.value == sum(values)

    @given(st.lists(st.integers(min_value=-(10**10), max_value=10**10), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_min_max(self, values):
        assert aggregate(values, SPEC, "min").value == min(values)
        assert aggregate(values, SPEC, "max").value == max(values)

    def test_count(self):
        run = aggregate([5] * 321, SPEC, "count")
        assert run.value == 321

    def test_avg_truncates_like_the_rules(self):
        values = [10, 11, 13]
        run = aggregate(values, DecimalSpec(5, 0), "avg")
        prescale = inference.div_prescale(inference.count_spec(3))
        assert run.value == sum(values) * 10**prescale // 3

    def test_empty_rejected(self):
        with pytest.raises(MultithreadError):
            aggregate([], SPEC, "sum")

    def test_unknown_op_rejected(self):
        with pytest.raises(MultithreadError):
            aggregate([1], SPEC, "median")

    def test_sum_spec_widens_with_simulated_count(self):
        run = aggregate([1, 2], SPEC, "sum", simulate_tuples=10_000_000)
        assert run.spec == inference.sum_result(SPEC, 10_000_000)
        assert run.value == 3  # values reflect real rows


class TestPassStructure:
    def test_multiple_passes_for_large_n(self):
        run = aggregate([1] * 10, SPEC, "sum", tpi=8, simulate_tuples=10_000_000)
        assert run.pass_count >= 2
        assert run.passes[0].input_values == 10_000_000
        assert run.passes[-1].blocks == 1

    def test_single_pass_when_one_block_suffices(self):
        run = aggregate([1] * 10, SPEC, "sum", tpi=8)
        assert run.pass_count == 1

    def test_pass_inputs_shrink(self):
        run = aggregate([1], SPEC, "sum", simulate_tuples=50_000_000)
        sizes = [p.input_values for p in run.passes]
        assert sizes == sorted(sizes, reverse=True)

    def test_time_grows_with_width(self):
        narrow = aggregate([1] * 4, DecimalSpec(11, 7), "sum", simulate_tuples=10_000_000)
        wide = aggregate([1] * 4, DecimalSpec(281, 101), "sum", simulate_tuples=10_000_000)
        assert wide.seconds > narrow.seconds
