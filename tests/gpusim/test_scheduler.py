"""Tests for the device scheduler's discrete-event simulation.

The invariants under test are the serving model's contract: sequential
segments within a query, SM co-residency by occupancy, processor sharing
(aggregate throughput conserved, never multiplied), cross-resource
overlap, and closed-loop arrivals.
"""

import pytest

from repro.engine.plan.physical import ExecutionReport, KernelExecution
from repro.gpusim.scheduler import (
    HOST,
    PCIE,
    SM,
    DeviceScheduler,
    Segment,
    percentile,
    segments_from_report,
)


def simulate(*streams):
    """Build a scheduler from per-session segment streams and run it."""
    scheduler = DeviceScheduler()
    for index, stream in enumerate(streams):
        for segments in stream:
            scheduler.submit(f"s{index}", segments)
    return scheduler.simulate()


class TestSegment:
    def test_rejects_unknown_resource(self):
        with pytest.raises(ValueError, match="unknown resource"):
            Segment("tensor-core", 1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Segment(SM, -0.5)

    def test_rejects_out_of_range_demand(self):
        with pytest.raises(ValueError, match="demand"):
            Segment(SM, 1.0, demand=0.0)
        with pytest.raises(ValueError, match="demand"):
            Segment(SM, 1.0, demand=1.5)


class TestPercentile:
    def test_endpoints_and_median(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSingleQuery:
    def test_makespan_is_sum_of_segments(self):
        result = simulate([[Segment(HOST, 1.0), Segment(PCIE, 2.0), Segment(SM, 3.0)]])
        assert result.makespan == pytest.approx(6.0)
        assert result.serialized_seconds == pytest.approx(6.0)
        assert result.overlap_speedup == pytest.approx(1.0)
        assert result.queries[0].latency == pytest.approx(6.0)
        assert result.queries[0].slowdown == pytest.approx(1.0)

    def test_zero_work_query_completes_instantly(self):
        result = simulate([[]])
        assert result.makespan == 0.0
        assert len(result.queries) == 1
        assert result.queries[0].latency == 0.0

    def test_busy_seconds_per_resource(self):
        result = simulate([[Segment(PCIE, 2.0), Segment(SM, 3.0)]])
        assert result.busy_seconds[PCIE] == pytest.approx(2.0)
        assert result.busy_seconds[SM] == pytest.approx(3.0)


class TestOverlap:
    def test_disjoint_resources_fully_overlap(self):
        # One query on the copy engine, one on the SMs: makespan is the max.
        result = simulate([[Segment(PCIE, 2.0)]], [[Segment(SM, 3.0)]])
        assert result.makespan == pytest.approx(3.0)
        assert result.serialized_seconds == pytest.approx(5.0)
        assert result.overlap_speedup == pytest.approx(5.0 / 3.0)

    def test_host_segments_overlap_each_other(self):
        result = simulate([[Segment(HOST, 2.0)]], [[Segment(HOST, 2.0)]])
        assert result.makespan == pytest.approx(2.0)

    def test_low_occupancy_kernels_are_co_resident(self):
        # Two 0.5-occupancy kernels fit on the SMs together: both run at
        # full rate, makespan is the max, not the sum.
        result = simulate(
            [[Segment(SM, 2.0, demand=0.5)]], [[Segment(SM, 2.0, demand=0.5)]]
        )
        assert result.makespan == pytest.approx(2.0)
        assert result.overlap_speedup == pytest.approx(2.0)

    def test_full_demand_kernels_processor_share(self):
        # Two demand-1.0 kernels oversubscribe the SMs: each progresses at
        # half rate, so the makespan equals full serialization -- aggregate
        # SM throughput is conserved, never multiplied.
        result = simulate([[Segment(SM, 2.0)]], [[Segment(SM, 2.0)]])
        assert result.makespan == pytest.approx(4.0)
        assert result.overlap_speedup == pytest.approx(1.0)
        # Both queries were in flight the whole time.
        for query in result.queries:
            assert query.latency == pytest.approx(4.0)
            assert query.slowdown == pytest.approx(2.0)

    def test_oversubscribed_sm_busy_never_exceeds_capacity(self):
        result = simulate(
            [[Segment(SM, 1.0, demand=0.8)]], [[Segment(SM, 1.0, demand=0.8)]]
        )
        # demand 1.6 -> rate 1/1.6 each -> makespan 1.6, SM busy == makespan.
        assert result.makespan == pytest.approx(1.6)
        assert result.busy_seconds[SM] == pytest.approx(result.makespan)


class TestClosedLoop:
    def test_next_query_arrives_at_previous_finish(self):
        result = simulate([[Segment(SM, 1.0)], [Segment(SM, 1.0)]])
        first, second = result.queries
        assert first.index == 0 and second.index == 1
        assert first.finish == pytest.approx(1.0)
        assert second.arrival == pytest.approx(first.finish)
        assert second.finish == pytest.approx(2.0)

    def test_latency_includes_contention(self):
        # Session 0 runs two back-to-back SM queries; session 1's single SM
        # query shares the array the whole time.
        result = simulate(
            [[Segment(SM, 1.0)], [Segment(SM, 1.0)]], [[Segment(SM, 2.0)]]
        )
        assert result.makespan == pytest.approx(4.0)
        contended = [q for q in result.queries if q.session == "s1"][0]
        assert contended.latency == pytest.approx(4.0)
        assert contended.slowdown == pytest.approx(2.0)

    def test_throughput_counts_all_queries(self):
        result = simulate([[Segment(SM, 1.0)], [Segment(SM, 1.0)]])
        assert result.throughput_qps == pytest.approx(2.0 / result.makespan)


class TestSegmentsFromReport:
    def _report(self):
        return ExecutionReport(
            scan_seconds=0.1,
            pcie_seconds=0.2,
            compile_seconds=0.3,
            kernel_seconds=0.5,
            filter_seconds=0.05,
            aggregate_seconds=0.07,
            sort_seconds=0.0,
            pipeline_seconds=0.04,
            kernel_executions=[
                KernelExecution(
                    name="calc_expr_0",
                    expression="a + b",
                    chunks=4,
                    streamed=True,
                    transfer_seconds_per_chunk=0.01,
                    kernel_seconds_per_chunk=0.1,
                    serial_seconds=0.44,
                    pipelined_seconds=0.41,
                    occupancy=0.5,
                )
            ],
        )

    def test_resource_attribution(self):
        segments = segments_from_report(self._report())
        by_label = {segment.label: segment for segment in segments}
        assert by_label["scan"].resource == HOST
        assert by_label["compile"].resource == HOST
        assert by_label["pipeline"].resource == HOST
        assert by_label["pcie"].resource == PCIE
        assert by_label["filter"].resource == SM
        assert by_label["aggregate"].resource == SM
        # sort_seconds == 0 -> no segment emitted for it.
        assert "sort" not in by_label

    def test_kernel_launch_demands_its_occupancy(self):
        segments = segments_from_report(self._report())
        launch = next(s for s in segments if s.label == "calc_expr_0")
        assert launch.resource == SM
        assert launch.demand == pytest.approx(0.5)
        assert launch.seconds == pytest.approx(0.4)  # 4 chunks x 0.1 s
        # Kernel time not covered by launch records demands the full array.
        rest = next(s for s in segments if s.label == "kernel-rest")
        assert rest.seconds == pytest.approx(0.1)
        assert rest.demand == pytest.approx(1.0)

    def test_total_charged_time_preserved(self):
        report = self._report()
        segments = segments_from_report(report)
        assert sum(s.seconds for s in segments) == pytest.approx(report.total_seconds)


class TestScheduler:
    def test_submission_order_across_sessions_is_irrelevant(self):
        a = DeviceScheduler()
        a.submit("x", [Segment(SM, 1.0)])
        a.submit("y", [Segment(SM, 2.0)])
        b = DeviceScheduler()
        b.submit("y", [Segment(SM, 2.0)])
        b.submit("x", [Segment(SM, 1.0)])
        ra, rb = a.simulate(), b.simulate()
        assert ra.makespan == pytest.approx(rb.makespan)
        assert [q.latency for q in ra.queries] == pytest.approx(
            [q.latency for q in rb.queries]
        )

    def test_bookkeeping(self):
        scheduler = DeviceScheduler()
        scheduler.submit("x", [Segment(SM, 1.0)])
        scheduler.submit("x", [Segment(SM, 1.0)])
        scheduler.submit("y", [Segment(HOST, 1.0)])
        assert sorted(scheduler.sessions) == ["x", "y"]
        assert scheduler.total_queries == 3
        scheduler.clear()
        assert scheduler.total_queries == 0
        assert scheduler.simulate().makespan == 0.0

    def test_submit_report_round_trip(self):
        scheduler = DeviceScheduler()
        report = ExecutionReport(scan_seconds=0.5, kernel_seconds=1.5)
        scheduler.submit_report("x", report)
        result = scheduler.simulate()
        assert result.makespan == pytest.approx(report.total_seconds)
