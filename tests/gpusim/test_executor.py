"""Tests for the kernel executor (correctness + report plumbing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import JitOptions, compile_expression
from repro.errors import ExecutionError
from repro.gpusim import execute


def run_expression(text, columns_spec, values, simulate=None, options=None):
    columns = {}
    rows = None
    for name, (spec, vals) in columns_spec.items():
        vector = DecimalVector.from_unscaled(vals, spec)
        columns[name] = vector.to_compact()
        rows = len(vals)
    compiled = compile_expression(text, {n: s for n, (s, _) in columns_spec.items()},
                                  options or JitOptions())
    run = execute(compiled.kernel, columns, rows, simulate_tuples=simulate)
    return run


class TestCorrectness:
    def test_listing1(self):
        run = run_expression(
            "c1 + c2",
            {
                "c1": (DecimalSpec(4, 2), [123, -50]),
                "c2": (DecimalSpec(4, 1), [11, 999]),
            },
            None,
        )
        # 1.23 + 1.1 = 2.33 ; -0.50 + 99.9 = 99.40
        assert run.result.to_unscaled() == [233, 9940]
        assert run.result.spec == DecimalSpec(6, 2)

    @given(
        st.lists(st.integers(min_value=-(10**11), max_value=10**11), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_polynomial_matches_oracle(self, values):
        spec = DecimalSpec(12, 2)
        run = run_expression(
            "a * a + 2 * a - a * 3",
            {"a": (spec, values)},
            None,
        )
        got = run.result.to_unscaled()
        scale = run.result.spec.scale
        for value, result in zip(values, got):
            # exact rational: a^2 + 2a - 3a at the result scale
            exact = value * value * 10 ** (scale - 4) + (2 * value - 3 * value) * 10 ** (
                scale - 2
            )
            assert result == exact

    def test_division_kernel(self):
        run = run_expression(
            "a / b",
            {
                "a": (DecimalSpec(10, 2), [100, 333, -500]),
                "b": (DecimalSpec(4, 1), [5, 30, 25]),  # divisors 0.5, 3.0, 2.5
            },
            None,
        )
        # scale s1+4 = 6: 1.00/0.5=2.0, 3.33/3.0=1.11, -5.00/2.5=-2.0
        assert run.result.to_unscaled() == [2000000, 1110000, -2000000]

    def test_modulo_kernel(self):
        run = run_expression(
            "a % b",
            {
                "a": (DecimalSpec(10, 0), [17, 100, -7]),
                "b": (DecimalSpec(5, 0), [5, 9, 3]),
            },
            None,
        )
        assert run.result.to_unscaled() == [2, 1, -1]

    def test_column_reuse_loads_once(self):
        """CSE: a + a + a loads column a exactly once."""
        from repro.core.jit import ir

        compiled = compile_expression("a + a + a", {"a": DecimalSpec(8, 1)})
        loads = [i for i in compiled.kernel.instructions if isinstance(i, ir.LoadColumn)]
        assert len(loads) == 1

    def test_unary_negation(self):
        run = run_expression("-a + 1", {"a": (DecimalSpec(6, 0), [5, -3, 0])}, None)
        assert run.result.to_unscaled() == [-4, 4, 1]


class TestReporting:
    def test_simulate_tuples_scales_time_not_values(self):
        spec = DecimalSpec(8, 2)
        small = run_expression("a + a", {"a": (spec, [100, 200])}, None, simulate=2)
        big = run_expression("a + a", {"a": (spec, [100, 200])}, None, simulate=10_000_000)
        assert small.result.to_unscaled() == big.result.to_unscaled()
        small_work = small.timing.seconds - small.timing.launch_seconds
        big_work = big.timing.seconds - big.timing.launch_seconds
        assert big_work > small_work * 1000

    def test_missing_column_raises(self):
        compiled = compile_expression("a + 1", {"a": DecimalSpec(6, 0)})
        with pytest.raises(ExecutionError):
            execute(compiled.kernel, {}, 3)

    def test_row_count_mismatch_raises(self):
        spec = DecimalSpec(6, 0)
        vector = DecimalVector.from_unscaled([1, 2, 3], spec)
        compiled = compile_expression("a + 1", {"a": spec})
        with pytest.raises(ExecutionError):
            execute(compiled.kernel, {"a": vector.to_compact()}, 5)
