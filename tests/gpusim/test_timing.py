"""Tests for the GPU simulator's occupancy, memory and timing models."""

import pytest

from repro.core.decimal.context import PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time, occupancy, pcie_time, profile_kernel
from repro.gpusim.device import DEFAULT_DEVICE
from repro.gpusim import memory, timing


def add_kernel(length, tpi=1):
    precision = PAPER_RESULT_PRECISIONS[length] - 1
    schema = {"a": DecimalSpec(precision, 2), "b": DecimalSpec(precision, 2)}
    return compile_expression("a + b", schema, JitOptions(tpi=tpi)).kernel


def mul_kernel(length):
    precision = PAPER_RESULT_PRECISIONS[length]
    half = precision // 2
    schema = {"a": DecimalSpec(half, 2), "b": DecimalSpec(precision - half, 2)}
    return compile_expression("a * b", schema).kernel


def div_kernel(length, tpi=1):
    precision = PAPER_RESULT_PRECISIONS[length]
    divisor = DecimalSpec(9, 2)
    dividend = DecimalSpec(precision + divisor.precision - divisor.scale - 5, 2)
    return compile_expression("a / b", {"a": dividend, "b": divisor}, JitOptions(tpi=tpi)).kernel


class TestOccupancy:
    def test_full_at_low_precision(self):
        occ = occupancy.compute(add_kernel(8), DEFAULT_DEVICE)
        assert occ.occupancy == pytest.approx(1.0)

    def test_drops_at_len32(self):
        """Paper: LEN=32 additions run at ~50% occupancy."""
        occ = occupancy.compute(add_kernel(32), DEFAULT_DEVICE)
        assert 0.35 <= occ.occupancy <= 0.65

    def test_mul_drops_more_than_add(self):
        """Paper: multiplication occupancy falls to 33% (scratch registers)."""
        occ_add = occupancy.compute(add_kernel(32), DEFAULT_DEVICE)
        occ_mul = occupancy.compute(mul_kernel(32), DEFAULT_DEVICE)
        assert occ_mul.occupancy < occ_add.occupancy

    def test_tpi_relieves_register_pressure(self):
        solo = occupancy.compute(add_kernel(32, tpi=1), DEFAULT_DEVICE)
        grouped = occupancy.compute(add_kernel(32, tpi=8), DEFAULT_DEVICE)
        assert grouped.registers_per_thread < solo.registers_per_thread
        assert grouped.occupancy >= solo.occupancy

    def test_whole_warps(self):
        occ = occupancy.compute(add_kernel(32), DEFAULT_DEVICE)
        assert occ.threads_per_sm % DEFAULT_DEVICE.warp_size == 0


class TestMemoryModel:
    def test_compact_smaller_than_non_compact(self):
        kernel = add_kernel(32)
        compact = memory.profile(kernel, non_compact=False)
        wide = memory.profile(kernel, non_compact=True)
        assert compact < wide

    def test_bytes_scale_with_len(self):
        assert memory.profile(add_kernel(32)) > memory.profile(add_kernel(4))

    def test_coalescing_improves_with_tpi(self):
        solo = memory.coalescing_factor(add_kernel(32, tpi=1), DEFAULT_DEVICE)
        grouped = memory.coalescing_factor(add_kernel(32, tpi=8), DEFAULT_DEVICE)
        assert grouped > solo

    def test_narrow_access_fully_coalesced(self):
        assert memory.coalescing_factor(add_kernel(2, tpi=4), DEFAULT_DEVICE) == 1.0


class TestKernelTiming:
    def test_linear_in_tuples(self):
        kernel = add_kernel(8)
        t1 = kernel_time(kernel, 1_000_000)
        t10 = kernel_time(kernel, 10_000_000)
        ratio = (t10.seconds - t10.launch_seconds) / (t1.seconds - t1.launch_seconds)
        assert ratio == pytest.approx(10.0, rel=0.01)

    def test_addition_is_memory_bound(self):
        """Paper section IV-A: simple arithmetic is memory-intensive."""
        for length in (4, 8, 32):
            t = kernel_time(add_kernel(length), 10_000_000)
            assert t.memory_bound

    def test_fig13_add_anchors(self):
        """LEN=32 single-threaded add ~50 ms; TPI=8 roughly halves it."""
        solo = kernel_time(add_kernel(32, tpi=1), 10_000_000).seconds
        grouped = kernel_time(add_kernel(32, tpi=8), 10_000_000).seconds
        assert 0.035 <= solo <= 0.070  # paper: 49.67 ms
        assert 0.015 <= grouped <= 0.035  # paper: 23.67 ms
        assert grouped < solo

    def test_fig13_low_precision_parity(self):
        """At LEN=4, single and multi-threaded adds are comparable."""
        solo = kernel_time(add_kernel(4, tpi=1), 10_000_000).seconds
        grouped = kernel_time(add_kernel(4, tpi=4), 10_000_000).seconds
        assert grouped == pytest.approx(solo, rel=0.8)

    def test_division_much_slower_single_threaded(self):
        div = kernel_time(div_kernel(16, tpi=1), 10_000_000).seconds
        add = kernel_time(add_kernel(16, tpi=1), 10_000_000).seconds
        assert div > 3 * add

    def test_newton_raphson_beats_binary_search_at_high_len(self):
        solo = kernel_time(div_kernel(32, tpi=1), 10_000_000).seconds
        grouped = kernel_time(div_kernel(32, tpi=8), 10_000_000).seconds
        assert grouped < solo / 5

    def test_alignment_costs_show_up(self):
        """The Figure 10 premise: alignments measurably slow kernels."""
        schema = {"a": DecimalSpec(290, 1), "b": DecimalSpec(18, 11)}
        with_align = compile_expression(
            "a + b + a", schema, JitOptions(alignment_scheduling=False)
        ).kernel
        without = compile_expression("a + b + a", schema).kernel
        assert with_align.alignment_ops() > without.alignment_ops()
        t_with = kernel_time(with_align, 10_000_000).seconds
        t_without = kernel_time(without, 10_000_000).seconds
        assert t_without < t_with


class TestPcie:
    def test_zero_bytes_free(self):
        assert pcie_time(0) == 0.0

    def test_latency_floor(self):
        assert pcie_time(1) >= DEFAULT_DEVICE.pcie_latency

    def test_bandwidth(self):
        a_gb = pcie_time(10**9)
        assert a_gb == pytest.approx(DEFAULT_DEVICE.pcie_latency + 1e9 / DEFAULT_DEVICE.pcie_bandwidth)


class TestCompileModel:
    def test_empty(self):
        assert timing.compile_time([]) == 0.0

    def test_base_once(self):
        kernel = add_kernel(4)
        with_base = timing.compile_time([kernel])
        without = timing.compile_time([kernel], include_base=False)
        assert with_base - without == pytest.approx(timing.COMPILE_BASE_SECONDS)

    def test_longer_code_costs_more(self):
        assert timing.compile_time([add_kernel(32)]) > timing.compile_time([add_kernel(2)])


class TestProfiler:
    def test_section_iv_a_shape(self):
        """Single-digit SM util, memory bound, occupancy drop at LEN=32."""
        profile8 = profile_kernel(add_kernel(8))
        profile32 = profile_kernel(add_kernel(32))
        assert profile8.memory_bound and profile32.memory_bound
        assert profile8.sm_utilization_percent < 10
        assert profile8.warp_occupancy_percent == pytest.approx(100.0)
        assert profile32.warp_occupancy_percent < 70

    def test_str_renders(self):
        text = str(profile_kernel(add_kernel(8)))
        assert "occupancy" in text and "memory-bound" in text
