"""Tests for chunked execution with transfer/compute overlap."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.errors import ExecutionError
from repro.gpusim import execute
from repro.gpusim.device import GpuDevice
from repro.gpusim.streaming import (
    MIN_AUTO_CHUNK_ROWS,
    StreamingConfig,
    execute_streamed,
    stream_timing,
)

SPEC = DecimalSpec(30, 2)


def setup(rows=100):
    schema = {"a": SPEC, "b": SPEC}
    compiled = compile_expression("a + b * 2", schema)
    values_a = [i * 7 - 50 for i in range(rows)]
    values_b = [i * 3 + 1 for i in range(rows)]
    columns = {
        "a": DecimalVector.from_unscaled(values_a, SPEC).to_compact(),
        "b": DecimalVector.from_unscaled(values_b, SPEC).to_compact(),
    }
    expected = [a + 2 * b for a, b in zip(values_a, values_b)]
    return compiled.kernel, columns, expected


class TestCorrectness:
    def test_matches_monolithic(self):
        kernel, columns, expected = setup(rows=100)
        run = execute_streamed(
            kernel, columns, 100, simulate_tuples=10_000_000, chunk_rows=1_000_000
        )
        assert run.result.to_unscaled() == expected
        assert run.chunks == 10

    def test_single_chunk(self):
        kernel, columns, expected = setup(rows=10)
        run = execute_streamed(kernel, columns, 10, simulate_tuples=500_000)
        assert run.chunks == 1
        assert run.result.to_unscaled() == expected

    def test_uneven_chunks(self):
        kernel, columns, expected = setup(rows=97)
        run = execute_streamed(
            kernel, columns, 97, simulate_tuples=10_000_000, chunk_rows=3_000_000
        )
        assert run.result.to_unscaled() == expected

    def test_bad_chunk_rows(self):
        kernel, columns, _ = setup(rows=5)
        with pytest.raises(ExecutionError):
            execute_streamed(kernel, columns, 5, simulate_tuples=10, chunk_rows=0)

    def test_chunk_rows_larger_than_tuples(self):
        kernel, columns, expected = setup(rows=7)
        run = execute_streamed(
            kernel, columns, 7, simulate_tuples=7, chunk_rows=1_000_000
        )
        assert run.chunks == 1
        assert run.result.to_unscaled() == expected

    def test_empty_input_is_a_valid_noop(self):
        """tuples=0 returns an empty StreamedRun, not an ExecutionError."""
        kernel, columns, _ = setup(rows=5)
        empty = {name: data[:0] for name, data in columns.items()}
        run = execute_streamed(kernel, empty, 0, simulate_tuples=0)
        assert run.chunks == 0
        assert run.result.to_unscaled() == []
        assert run.result.spec == kernel.result_spec
        assert run.serial_seconds == 0.0
        assert run.pipelined_seconds == 0.0
        assert run.overlap_speedup == 1.0

    @pytest.mark.parametrize("expression", ["a + b", "a * b", "a / b"])
    @pytest.mark.parametrize("chunk_rows", [1, 3, 10, 64, 1_000])
    def test_bit_exact_across_kernels_and_chunk_sizes(self, expression, chunk_rows):
        """Chunked results equal the unchunked run for add/mul/div kernels."""
        spec = DecimalSpec(20, 2)
        schema = {"a": spec, "b": spec}
        compiled = compile_expression(expression, schema)
        rows = 53
        values_a = [i * 101 - 2_500 for i in range(rows)]
        values_b = [i * 13 + 7 for i in range(rows)]  # never zero
        columns = {
            "a": DecimalVector.from_unscaled(values_a, spec).to_compact(),
            "b": DecimalVector.from_unscaled(values_b, spec).to_compact(),
        }
        monolithic = execute(compiled.kernel, columns, rows)
        streamed = execute_streamed(
            compiled.kernel,
            columns,
            rows,
            simulate_tuples=rows,
            chunk_rows=chunk_rows,
        )
        assert streamed.result.to_unscaled() == monolithic.result.to_unscaled()
        assert streamed.result.spec == monolithic.result.spec


class TestOverlapModel:
    def test_pipelining_beats_serial(self):
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(
            kernel, columns, 20, simulate_tuples=10_000_000, chunk_rows=1_000_000
        )
        assert run.pipelined_seconds < run.serial_seconds
        assert run.overlap_speedup > 1.1

    def test_balanced_stages_approach_2x(self):
        """When transfer and kernel times balance, overlap nears 2x."""
        # Wide multiplication: the kernel's device-memory time (reads plus
        # the 32-word product write-back) balances the input PCIe transfer.
        spec = DecimalSpec(153, 2)
        schema = {"a": spec, "b": spec}
        compiled = compile_expression("a * b", schema)
        values = [10**100 + i for i in range(8)]
        divisors = [10**99 + 7 * i + 1 for i in range(8)]
        columns = {
            "a": DecimalVector.from_unscaled(values, spec).to_compact(),
            "b": DecimalVector.from_unscaled(divisors, spec).to_compact(),
        }
        run = execute_streamed(
            compiled.kernel, columns, 8, simulate_tuples=20_000_000, chunk_rows=1_000_000
        )
        assert run.overlap_speedup > 1.5

    def test_speedup_bounded_by_two(self):
        # Perfect two-stage pipelining can at most halve the time.
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(
            kernel, columns, 20, simulate_tuples=20_000_000, chunk_rows=1_000_000
        )
        assert run.overlap_speedup <= 2.0 + 1e-9

    def test_one_chunk_has_no_overlap(self):
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(kernel, columns, 20, simulate_tuples=100_000)
        assert run.pipelined_seconds == pytest.approx(run.serial_seconds)

    def test_transfer_bytes_override(self):
        """transfer_bytes=0 models already-resident inputs: no PCIe stage."""
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(
            kernel,
            columns,
            20,
            simulate_tuples=10_000_000,
            chunk_rows=1_000_000,
            transfer_bytes=0,
        )
        assert run.transfer_seconds_per_chunk == 0.0
        assert run.pipelined_seconds == pytest.approx(
            run.kernel_seconds_per_chunk * run.chunks
        )
        assert run.serial_seconds == pytest.approx(run.pipelined_seconds)


class TestStreamingConfig:
    def test_explicit_chunk_rows_win(self):
        kernel, _, _ = setup(rows=5)
        config = StreamingConfig(enabled=True, chunk_rows=123_456)
        assert config.resolve_chunk_rows(kernel, GpuDevice()) == 123_456

    def test_auto_sizing_respects_memory_budget(self):
        kernel, _, _ = setup(rows=5)
        config = StreamingConfig(enabled=True, chunk_rows=None)
        small = GpuDevice(memory_bytes=64e6)
        big = GpuDevice(memory_bytes=48e9)
        assert config.resolve_chunk_rows(kernel, small) < config.resolve_chunk_rows(
            kernel, big
        )
        bytes_per_row = (
            2 * kernel.bytes_read_per_tuple + kernel.bytes_written_per_tuple
        )
        rows = config.resolve_chunk_rows(kernel, small)
        assert rows == max(
            MIN_AUTO_CHUNK_ROWS,
            int(config.memory_fraction * small.memory_bytes / bytes_per_row),
        )

    def test_auto_sizing_targets_pipeline_depth(self):
        """Even when memory is plentiful, auto mode still chunks the batch."""
        kernel, _, _ = setup(rows=5)
        config = StreamingConfig(enabled=True, chunk_rows=None)
        rows = config.resolve_chunk_rows(kernel, GpuDevice(), tuples=10_000_000)
        timing = stream_timing(kernel, 10_000_000, rows)
        assert timing.chunks > 1

    def test_auto_sizing_floor(self):
        kernel, _, _ = setup(rows=5)
        config = StreamingConfig(enabled=True, chunk_rows=None)
        rows = config.resolve_chunk_rows(kernel, GpuDevice(), tuples=1_000)
        assert rows == MIN_AUTO_CHUNK_ROWS

    def test_bad_explicit_chunk_rows(self):
        kernel, _, _ = setup(rows=5)
        with pytest.raises(ExecutionError):
            StreamingConfig(enabled=True, chunk_rows=0).resolve_chunk_rows(
                kernel, GpuDevice()
            )


class TestStreamedProfiler:
    def test_profile_kernel_streamed(self):
        from repro.gpusim.profiler import profile_kernel_streamed

        kernel, _, _ = setup(rows=5)
        profile = profile_kernel_streamed(
            kernel, tuples=10_000_000, chunk_rows=1_000_000
        )
        assert profile.chunks == 10
        assert profile.pipelined_ms < profile.serial_ms
        assert profile.overlap_speedup > 1.0
        assert profile.profile.kernel_name == kernel.name
        assert "streamed x10" in str(profile)
