"""Tests for chunked execution with transfer/compute overlap."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.errors import ExecutionError
from repro.gpusim import execute
from repro.gpusim.streaming import execute_streamed

SPEC = DecimalSpec(30, 2)


def setup(rows=100):
    schema = {"a": SPEC, "b": SPEC}
    compiled = compile_expression("a + b * 2", schema)
    values_a = [i * 7 - 50 for i in range(rows)]
    values_b = [i * 3 + 1 for i in range(rows)]
    columns = {
        "a": DecimalVector.from_unscaled(values_a, SPEC).to_compact(),
        "b": DecimalVector.from_unscaled(values_b, SPEC).to_compact(),
    }
    expected = [a + 2 * b for a, b in zip(values_a, values_b)]
    return compiled.kernel, columns, expected


class TestCorrectness:
    def test_matches_monolithic(self):
        kernel, columns, expected = setup(rows=100)
        run = execute_streamed(
            kernel, columns, 100, simulate_tuples=10_000_000, chunk_rows=1_000_000
        )
        assert run.result.to_unscaled() == expected
        assert run.chunks == 10

    def test_single_chunk(self):
        kernel, columns, expected = setup(rows=10)
        run = execute_streamed(kernel, columns, 10, simulate_tuples=500_000)
        assert run.chunks == 1
        assert run.result.to_unscaled() == expected

    def test_uneven_chunks(self):
        kernel, columns, expected = setup(rows=97)
        run = execute_streamed(
            kernel, columns, 97, simulate_tuples=10_000_000, chunk_rows=3_000_000
        )
        assert run.result.to_unscaled() == expected

    def test_bad_chunk_rows(self):
        kernel, columns, _ = setup(rows=5)
        with pytest.raises(ExecutionError):
            execute_streamed(kernel, columns, 5, simulate_tuples=10, chunk_rows=0)


class TestOverlapModel:
    def test_pipelining_beats_serial(self):
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(
            kernel, columns, 20, simulate_tuples=10_000_000, chunk_rows=1_000_000
        )
        assert run.pipelined_seconds < run.serial_seconds
        assert run.overlap_speedup > 1.1

    def test_balanced_stages_approach_2x(self):
        """When transfer and kernel times balance, overlap nears 2x."""
        # Wide multiplication: the kernel's device-memory time (reads plus
        # the 32-word product write-back) balances the input PCIe transfer.
        spec = DecimalSpec(153, 2)
        schema = {"a": spec, "b": spec}
        compiled = compile_expression("a * b", schema)
        values = [10**100 + i for i in range(8)]
        divisors = [10**99 + 7 * i + 1 for i in range(8)]
        columns = {
            "a": DecimalVector.from_unscaled(values, spec).to_compact(),
            "b": DecimalVector.from_unscaled(divisors, spec).to_compact(),
        }
        run = execute_streamed(
            compiled.kernel, columns, 8, simulate_tuples=20_000_000, chunk_rows=1_000_000
        )
        assert run.overlap_speedup > 1.5

    def test_speedup_bounded_by_two(self):
        # Perfect two-stage pipelining can at most halve the time.
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(
            kernel, columns, 20, simulate_tuples=20_000_000, chunk_rows=1_000_000
        )
        assert run.overlap_speedup <= 2.0 + 1e-9

    def test_one_chunk_has_no_overlap(self):
        kernel, columns, _ = setup(rows=20)
        run = execute_streamed(kernel, columns, 20, simulate_tuples=100_000)
        assert run.pipelined_seconds == pytest.approx(run.serial_seconds)
