"""Tests for n-ary transforms, alignment scheduling and constant folding."""


import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import alignment, nary, type_inference
from repro.core.jit.expr_ast import BinaryOp, Literal, NaryAdd, NaryMul, UnaryOp
from repro.core.jit.parser import parse_expression
from repro.core.jit.pipeline import JitOptions, compile_expression, optimize


def nary_of(text, schema):
    tree = parse_expression(text)
    type_inference.infer(tree, schema)
    out = nary.to_nary(tree)
    type_inference.infer(out, schema)
    return out


class TestNary:
    def test_collapses_addition_chains(self):
        schema = {"a": DecimalSpec(4, 1)}
        tree = nary_of("a + a + a + a", schema)
        assert isinstance(tree, NaryAdd) and len(tree.terms) == 4

    def test_subtraction_becomes_negated_addition(self):
        schema = {"a": DecimalSpec(4, 1), "b": DecimalSpec(4, 2)}
        tree = nary_of("a - b", schema)
        assert isinstance(tree, NaryAdd)
        assert isinstance(tree.terms[1], UnaryOp) and tree.terms[1].op == "-"

    def test_mul_chain_collapses(self):
        schema = {"a": DecimalSpec(4, 1)}
        tree = nary_of("a * a * 2", schema)
        assert isinstance(tree, NaryMul) and len(tree.factors) == 3

    def test_roundtrip_to_binary(self):
        schema = {"a": DecimalSpec(4, 1), "b": DecimalSpec(4, 2)}
        tree = nary_of("a + b - a", schema)
        binary = nary.to_binary(tree)
        type_inference.infer(binary, schema)
        # x + (-y) folds back into binary subtraction.
        assert binary.to_sql() == "((a + b) - a)"

    def test_division_stays_binary(self):
        schema = {"a": DecimalSpec(4, 1), "b": DecimalSpec(4, 2)}
        tree = nary_of("a / b + a", schema)
        assert isinstance(tree, NaryAdd)
        assert isinstance(tree.terms[0], BinaryOp) and tree.terms[0].op == "/"


class TestAlignmentScheduling:
    SCHEMA = {
        "a": DecimalSpec(12, 1),
        "b": DecimalSpec(17, 11),
    }

    def test_figure10_shape(self):
        """a+b+a: b (large scale) moves to the end; alignments 2 -> 1."""
        tree = nary_of("a + b + a", self.SCHEMA)
        before = alignment.count_alignments(tree)
        scheduled = alignment.schedule(tree)
        after = alignment.count_alignments(scheduled)
        assert (before, after) == (2, 1)
        assert alignment.scale_order(scheduled) == [1, 1, 11]

    @pytest.mark.parametrize(
        "expr,before,after",
        [
            ("a + b + a", 2, 1),
            ("a + b + a + a + a", 4, 1),
            ("a + b + a + a + a + a + a", 6, 1),
        ],
    )
    def test_figure10_alignment_counts(self, expr, before, after):
        """The exact alignment reductions of the Figure 10 experiment."""
        compiled = compile_expression(expr, self.SCHEMA)
        assert compiled.alignments_before == before
        assert compiled.alignments_after == after

    def test_mul_scale_is_sum(self):
        schema = {"b": DecimalSpec(12, 5), "c": DecimalSpec(12, 5)}
        tree = nary_of("b * c", schema)
        assert tree.effective_scale == 10

    def test_figure6_example(self):
        """a + b*c + d - e sorts to scales [2, 2, 2, 10]; 3 -> 1 aligns."""
        schema = {
            "a": DecimalSpec(12, 2),
            "b": DecimalSpec(12, 5),
            "c": DecimalSpec(12, 5),
            "d": DecimalSpec(12, 2),
            "e": DecimalSpec(12, 2),
        }
        compiled = compile_expression("a + b * c + d - e", schema)
        assert compiled.alignments_before == 3
        assert compiled.alignments_after == 1

    def test_scheduling_preserves_value(self):
        """Reordering addends must not change results (exact arithmetic)."""
        from repro.core.decimal.vectorized import DecimalVector
        from repro.gpusim import execute

        schema = self.SCHEMA
        a_vals = [15, -7, 99999]
        b_vals = [12345678901, -1, 10**16]
        va = DecimalVector.from_unscaled(a_vals, schema["a"])
        vb = DecimalVector.from_unscaled(b_vals, schema["b"])
        columns = {"a": va.to_compact(), "b": vb.to_compact()}
        for scheduling in (True, False):
            compiled = compile_expression(
                "a + b + a", schema, JitOptions(alignment_scheduling=scheduling)
            )
            run = execute(compiled.kernel, columns, 3)
            # Exact check: a + b + a at scale 11.
            expected = [
                2 * a * 10**10 + b for a, b in zip(a_vals, b_vals)
            ]
            assert run.result.to_unscaled() == expected


class TestConstantFolding:
    SCHEMA = {
        "a": DecimalSpec(12, 10),
        "b": DecimalSpec(12, 10),
        "c": DecimalSpec(12, 3),
        "d": DecimalSpec(12, 2),
    }

    def test_sum_constants_fold(self):
        """1 + a + 2 + 11 -> 14 + a (Figure 12, first expression)."""
        compiled = compile_expression("1 + a + 2 + 11", self.SCHEMA)
        adds = compiled.tree.to_sql().count("+")
        assert adds == 1
        assert "14" in compiled.tree.to_sql()

    def test_full_cancellation(self):
        """1 + a + 2 - 3 -> a (Figure 12, second expression)."""
        compiled = compile_expression("1 + a + 2 - 3", self.SCHEMA)
        assert compiled.tree.to_sql() == "a"

    def test_mul_constants_fold(self):
        """0.25 * (a + b) * 4 -> a + b (Figure 12, third expression)."""
        compiled = compile_expression("0.25 * (a + b) * 4", self.SCHEMA)
        assert compiled.tree.to_sql() == "(a + b)"

    def test_zero_plus_shortcut(self):
        compiled = compile_expression("0 + c", self.SCHEMA)
        assert compiled.tree.to_sql() == "c"

    def test_one_times_shortcut(self):
        compiled = compile_expression("1 * c", self.SCHEMA)
        assert compiled.tree.to_sql() == "c"

    def test_zero_times_folds_to_zero(self):
        compiled = compile_expression("0 * c", self.SCHEMA)
        assert compiled.tree.to_sql() == "0"

    def test_unary_plus_shortcut(self):
        compiled = compile_expression("+c", self.SCHEMA)
        assert compiled.tree.to_sql() == "c"

    def test_figure7_example(self):
        """1 + a + b*(5 + c - 5) + d + 1.23: constants fold, 0+c shortcut."""
        schema = {
            "a": DecimalSpec(12, 1),
            "b": DecimalSpec(12, 3),
            "c": DecimalSpec(12, 3),
            "d": DecimalSpec(12, 2),
        }
        compiled = compile_expression("1 + a + b * (5 + c - 5) + d + 1.23", schema)
        sql = compiled.tree.to_sql()
        assert "2.23" in sql  # 1 + 1.23 folded
        assert "5" not in sql  # 5 - 5 cancelled, 0 + c shortcut
        assert "(b * c)" in sql

    def test_constant_alignment_to_neighbour_scale(self):
        """Figure 7: the folded 2.23 pre-aligns to scale 3 at compile time."""
        schema = {
            "a": DecimalSpec(12, 1),
            "b": DecimalSpec(12, 3),
            "c": DecimalSpec(12, 3),
            "d": DecimalSpec(12, 2),
        }
        compiled = compile_expression("1 + a + b * (5 + c - 5) + d + 1.23", schema)
        literals = [
            node
            for node in _walk(compiled.tree)
            if isinstance(node, Literal)
        ]
        assert len(literals) == 1
        # Aligned to the minimum >= its own scale among siblings (d's 2).
        assert literals[0].spec.scale == 2

    def test_constant_division_folds_when_exact(self):
        compiled = compile_expression("a + 1 / 4", self.SCHEMA)
        assert "0.25" in compiled.tree.to_sql()

    def test_inexact_constant_division_not_folded(self):
        compiled = compile_expression("a + 1 / 3", self.SCHEMA)
        assert "/" in compiled.tree.to_sql()

    def test_folding_disabled(self):
        options = JitOptions(constant_folding=False, constant_alignment=False)
        compiled = compile_expression("1 + a + 2 + 11", self.SCHEMA, options)
        assert compiled.tree.to_sql().count("+") == 3


def _walk(expr):
    from repro.core.jit.expr_ast import walk

    return walk(expr)


class TestExpandPowersPurity:
    """expand_powers is value-oriented like every other pass (regression:
    it used to rewrite the caller's tree in place via setattr, forcing
    compile_expression to defensively re-parse the expression text)."""

    SCHEMA = {"x": DecimalSpec(8, 2), "y": DecimalSpec(8, 2)}

    def test_does_not_mutate_the_input_tree(self):
        from repro.core.jit.expr_ast import FuncCall
        from repro.core.jit.pipeline import expand_powers

        tree = parse_expression("POWER(x, 5) + y * POWER(x, 2)")
        before = tree.to_sql()
        expanded = expand_powers(tree)
        assert tree.to_sql() == before
        assert any(
            isinstance(node, FuncCall) and node.function == "POWER"
            for node in _walk(tree)
        )
        assert not any(
            isinstance(node, FuncCall) and node.function == "POWER"
            for node in _walk(expanded)
        )

    def test_one_parse_feeds_naive_count_and_optimizer(self):
        """compile_expression no longer needs per-stage re-parses: compiling
        twice from the same text yields identical kernels and alignment
        counts (the optimiser saw an unmutated tree both times)."""
        first = compile_expression("POWER(x, 4) + y", self.SCHEMA)
        second = compile_expression("POWER(x, 4) + y", self.SCHEMA)
        assert first.kernel.source == second.kernel.source
        assert first.alignments_before == second.alignments_before
        assert first.alignments_after == second.alignments_after

    def test_optimize_leaves_caller_tree_reusable(self):
        tree = parse_expression("POWER(x, 3)")
        type_inference.infer(tree, self.SCHEMA)
        optimize(tree, self.SCHEMA, JitOptions())
        # The caller's tree still round-trips: a second optimise over the
        # same object produces the same result.
        again = optimize(tree, self.SCHEMA, JitOptions())
        assert again.to_sql() == optimize(
            parse_expression("POWER(x, 3)"), self.SCHEMA, JitOptions()
        ).to_sql()


def _walk(expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)
