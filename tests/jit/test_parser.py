"""Tests for the arithmetic expression parser."""

import pytest

from repro.core.jit.expr_ast import BinaryOp, ColumnRef, Literal, UnaryOp
from repro.core.jit.parser import parse_expression, tokenize
from repro.errors import ParseError


class TestTokenizer:
    def test_basic(self):
        kinds = [t.kind for t in tokenize("c1 + 2.5 * (x)")]
        assert kinds == ["ident", "op", "number", "op", "lparen", "ident", "rparen"]

    def test_rejects_junk(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_number_forms(self):
        texts = [t.text for t in tokenize("1 1.5 .5 2.")]
        assert texts == ["1", "1.5", ".5", "2."]


class TestParser:
    def test_precedence(self):
        tree = parse_expression("a + b * c")
        assert isinstance(tree, BinaryOp) and tree.op == "+"
        assert isinstance(tree.right, BinaryOp) and tree.right.op == "*"

    def test_left_associativity(self):
        tree = parse_expression("a - b - c")
        assert tree.op == "-" and isinstance(tree.left, BinaryOp)
        assert tree.left.op == "-"

    def test_parentheses(self):
        tree = parse_expression("(a + b) * c")
        assert tree.op == "*"
        assert isinstance(tree.left, BinaryOp) and tree.left.op == "+"

    def test_unary_minus(self):
        tree = parse_expression("-a + b")
        assert tree.op == "+"
        assert isinstance(tree.left, UnaryOp) and tree.left.op == "-"

    def test_modulo_same_level_as_mul(self):
        tree = parse_expression("a * a % n * a % n")
        # Left-associative: (((a*a) % n) * a) % n -- the RSA Query 4 shape.
        assert tree.op == "%"
        assert tree.left.op == "*"
        assert tree.left.left.op == "%"
        assert tree.left.left.left.op == "*"

    def test_literals(self):
        tree = parse_expression("1.23")
        assert isinstance(tree, Literal)
        assert tree.spec.precision == 3 and tree.spec.scale == 2

    def test_column_names_with_underscores(self):
        tree = parse_expression("l_extendedprice * l_discount")
        assert isinstance(tree.left, ColumnRef)
        assert tree.left.name == "l_extendedprice"

    @pytest.mark.parametrize("bad", ["", "a +", "(a", "a b", "* a", "a ++"])
    def test_rejects_bad_input(self, bad):
        with pytest.raises(ParseError):
            parse_expression(bad)

    def test_to_sql_roundtrip(self):
        text = "a + b * c - 1.5"
        tree = parse_expression(text)
        assert parse_expression(tree.to_sql()).to_sql() == tree.to_sql()
