"""Tests for kernel IR generation and the rendered CUDA-like source."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, KernelCache, compile_expression
from repro.errors import TypeInferenceError


class TestKernelIR:
    SCHEMA = {"c1_4_2": DecimalSpec(4, 2), "c2_4_1": DecimalSpec(4, 1)}

    def test_listing1_structure(self):
        """DECIMAL(4,2) + DECIMAL(4,1): load, load, align(<<1), add, store."""
        compiled = compile_expression(
            "c1_4_2 + c2_4_1", self.SCHEMA, JitOptions(alignment_scheduling=False)
        )
        kernel = compiled.kernel
        kinds = [type(instruction).__name__ for instruction in kernel.instructions]
        assert kinds == ["LoadColumn", "LoadColumn", "Align", "AddOp", "StoreResult"]
        # Result expands to precision 6 (Listing 1's commentary).
        assert kernel.result_spec == DecimalSpec(6, 2)
        align = kernel.instructions[2]
        assert align.exponent == 1

    def test_listing1_lengths(self):
        """Lw = 1 and Lb widths for the Listing 1 example."""
        compiled = compile_expression("c1_4_2 + c2_4_1", self.SCHEMA)
        kernel = compiled.kernel
        assert kernel.result_spec.words == 1
        assert kernel.result_spec.compact_bytes == 3
        assert kernel.bytes_read_per_tuple == 4  # two DECIMAL(4,*) at 2 bytes

    def test_source_looks_like_listing1(self):
        compiled = compile_expression("c1_4_2 + c2_4_1", self.SCHEMA)
        source = compiled.kernel.source
        assert "__global__ void" in source
        assert "Decimal<1>" in source
        assert "toCompact" in source
        assert "blockIdx.x * blockDim.x + threadIdx.x" in source

    def test_input_columns_recorded(self):
        compiled = compile_expression("c1_4_2 + c2_4_1 * 2", self.SCHEMA)
        assert set(compiled.kernel.input_columns) == {"c1_4_2", "c2_4_1"}

    def test_division_prescale(self):
        schema = {"a": DecimalSpec(10, 2), "b": DecimalSpec(6, 3)}
        compiled = compile_expression("a / b", schema)
        divs = [i for i in compiled.kernel.instructions if isinstance(i, ir.DivOp)]
        assert len(divs) == 1
        assert divs[0].prescale == 7  # s2 + 4
        assert divs[0].spec.scale == 6  # s1 + 4

    def test_register_pressure_grows_with_precision(self):
        small = compile_expression("a + b", {"a": DecimalSpec(9, 2), "b": DecimalSpec(9, 2)})
        large = compile_expression(
            "a + b", {"a": DecimalSpec(300, 2), "b": DecimalSpec(300, 2)}
        )
        assert large.kernel.register_words > small.kernel.register_words

    def test_alignment_ops_counted(self):
        compiled = compile_expression(
            "c1_4_2 + c2_4_1", self.SCHEMA, JitOptions(alignment_scheduling=False)
        )
        assert compiled.kernel.alignment_ops() == 1

    def test_runtime_constants_flag(self):
        options = JitOptions(constant_construction=False, constant_alignment=False)
        compiled = compile_expression("1 + c1_4_2", self.SCHEMA, options)
        consts = [
            i for i in compiled.kernel.instructions if isinstance(i, ir.LoadConst)
        ]
        assert consts and all(c.runtime_convert for c in consts)

    def test_unknown_column_raises(self):
        with pytest.raises(TypeInferenceError):
            compile_expression("nope + 1", self.SCHEMA)


class TestKernelCache:
    SCHEMA = {"a": DecimalSpec(10, 2)}

    def test_hit_on_repeat(self):
        cache = KernelCache()
        first, cached1 = cache.compile("a + 1", self.SCHEMA)
        second, cached2 = cache.compile("a + 1", self.SCHEMA)
        assert not cached1 and cached2
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_different_schema(self):
        cache = KernelCache()
        cache.compile("a + 1", self.SCHEMA)
        _, cached = cache.compile("a + 1", {"a": DecimalSpec(20, 2)})
        assert not cached

    def test_miss_on_different_options(self):
        cache = KernelCache()
        cache.compile("a + 1", self.SCHEMA)
        _, cached = cache.compile("a + 1", self.SCHEMA, JitOptions(tpi=8))
        assert not cached

    def test_name_is_part_of_the_identity(self):
        """A kernel compiled as calc_expr must not answer for agg_expr_1.

        The label flows into EXPLAIN and profiler output; a cache hit
        across names would report the wrong kernel name.
        """
        cache = KernelCache()
        first, cached1 = cache.compile("a + 1", self.SCHEMA, name="calc_expr_0")
        second, cached2 = cache.compile("a + 1", self.SCHEMA, name="agg_expr_1")
        assert not cached1 and not cached2
        assert first.kernel.name == "calc_expr_0"
        assert second.kernel.name == "agg_expr_1"
        # Same name still hits.
        third, cached3 = cache.compile("a + 1", self.SCHEMA, name="agg_expr_1")
        assert cached3 and third is second

    def test_clear(self):
        cache = KernelCache()
        cache.compile("a + 1", self.SCHEMA)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0
