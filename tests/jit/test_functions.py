"""Tests for scalar functions (ABS/SIGN/ROUND/TRUNC/CEIL/FLOOR)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.core.jit.parser import parse_expression
from repro.core.jit.expr_ast import FuncCall
from repro.errors import ParseError
from repro.gpusim import execute

SPEC = DecimalSpec(10, 3)
SCHEMA = {"x": SPEC}


def run(expression, values, spec=SPEC):
    compiled = compile_expression(expression, {"x": spec})
    columns = {"x": DecimalVector.from_unscaled(values, spec).to_compact()}
    inputs = {n: columns[n] for n in compiled.kernel.input_columns}
    return execute(compiled.kernel, inputs, len(values)).result


class TestParsing:
    def test_function_call(self):
        tree = parse_expression("ABS(x + 1)")
        assert isinstance(tree, FuncCall)
        assert tree.function == "ABS"

    def test_round_with_scale(self):
        tree = parse_expression("ROUND(x, 2)")
        assert tree.function == "ROUND" and tree.scale_arg == 2

    def test_case_insensitive(self):
        assert parse_expression("abs(x)").function == "ABS"

    def test_function_named_column_still_works(self):
        # `sign` without parentheses is a plain column reference.
        tree = parse_expression("sign + 1")
        from repro.core.jit.expr_ast import BinaryOp, ColumnRef

        assert isinstance(tree, BinaryOp)
        assert isinstance(tree.left, ColumnRef) and tree.left.name == "sign"

    @pytest.mark.parametrize("bad", ["ABS(x, 1)", "ROUND(x,)", "ROUND(x, 1.5)", "ABS("])
    def test_bad_calls_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_expression(bad)


class TestExecution:
    def test_abs(self):
        result = run("ABS(x)", [1234, -1234, 0])
        assert result.to_unscaled() == [1234, 1234, 0]
        assert result.spec == SPEC

    def test_sign(self):
        result = run("SIGN(x)", [55, -55, 0])
        assert result.to_unscaled() == [1, -1, 0]
        assert result.spec == DecimalSpec(1, 0)

    def test_trunc(self):
        # x at scale 3; TRUNC(x, 1): 1.239 -> 1.2, -1.239 -> -1.2
        result = run("TRUNC(x, 1)", [1239, -1239])
        assert result.to_unscaled() == [12, -12]
        assert result.spec.scale == 1

    def test_round_half_up(self):
        result = run("ROUND(x, 1)", [1250, -1250, 1249])
        assert result.to_unscaled() == [13, -13, 12]

    def test_ceil_floor(self):
        values = [1500, -1500, 2000]
        assert run("CEIL(x)", values).to_unscaled() == [2, -1, 2]
        assert run("FLOOR(x)", values).to_unscaled() == [1, -2, 2]

    def test_functions_compose(self):
        result = run("ABS(FLOOR(x)) + 1", [-1500])
        assert result.to_unscaled() == [3]  # floor(-1.5) = -2, abs = 2, +1

    def test_round_up_to_higher_scale(self):
        result = run("ROUND(x, 5)", [1239])
        assert result.to_unscaled() == [123900]
        assert result.spec.scale == 5

    @given(st.lists(st.integers(min_value=-(10**9), max_value=10**9), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_abs_sign_invariant(self, values):
        """ABS(x) * SIGN(x) == x for every x."""
        result = run("ABS(x) * SIGN(x)", values)
        scale_factor = 10 ** (result.spec.scale - SPEC.scale)
        assert result.to_unscaled() == [v * scale_factor for v in values]


class TestConstantFolding:
    def test_constant_functions_fold(self):
        compiled = compile_expression("x + ABS(0 - 2.5)", SCHEMA)
        assert "2.5" in compiled.tree.to_sql()
        assert "ABS" not in compiled.tree.to_sql()

    def test_round_constant_folds(self):
        compiled = compile_expression("x + ROUND(1.25, 1)", SCHEMA)
        assert "1.3" in compiled.tree.to_sql()

    def test_floor_constant_folds(self):
        compiled = compile_expression("x * FLOOR(2.9)", SCHEMA)
        sql = compiled.tree.to_sql()
        assert "FLOOR" not in sql
        assert sql == "(2 * x)"  # constant factors fold to the front


class TestEngineIntegration:
    def test_functions_in_sql(self):
        from repro.engine import Database

        db = Database()
        db.create_table("t", {"v": "DECIMAL(8, 2)"}, rows=[("-1.55",), ("2.44",), ("0",)])
        result = db.execute("SELECT ABS(v), ROUND(v, 1) FROM t")
        assert [str(a) for a, _ in result.rows] == ["1.55", "2.44", "0.00"]
        assert [str(r) for _, r in result.rows] == ["-1.6", "2.4", "0.0"]

    def test_aggregate_of_function(self):
        from repro.engine import Database

        db = Database()
        db.create_table("t", {"v": "DECIMAL(8, 2)"}, rows=[("-3.00",), ("2.00",)])
        result = db.execute("SELECT SUM(ABS(v)) FROM t")
        assert str(result.scalar).startswith("5.00")


class TestPower:
    def test_rejects_bad_exponents(self):
        with pytest.raises(ParseError):
            parse_expression("POWER(x, 0)")
        with pytest.raises(ParseError):
            parse_expression("POWER(x, 65)")
        with pytest.raises(ParseError):
            parse_expression("POWER(x, 2.5)")

    @pytest.mark.parametrize("exponent", [1, 2, 3, 5, 8, 13])
    def test_matches_repeated_multiplication(self, exponent):
        spec = DecimalSpec(5, 1)
        values = [15, -20, 0, 99]
        result = run(f"POWER(x, {exponent})", values, spec=spec)
        assert result.to_unscaled() == [v**exponent for v in values]
        assert result.spec.scale == spec.scale * exponent

    def test_cse_gives_logarithmic_multiplications(self):
        from repro.core.jit import JitOptions, ir

        spec = DecimalSpec(5, 1)
        naive = compile_expression("POWER(x, 16)", {"x": spec})
        shared = compile_expression(
            "POWER(x, 16)", {"x": spec}, JitOptions(subexpression_elimination=True)
        )
        assert naive.kernel.count(ir.MulOp) == 15
        assert shared.kernel.count(ir.MulOp) == 4  # log2(16)

    def test_power_in_larger_expression(self):
        spec = DecimalSpec(5, 1)
        result = run("POWER(x, 3) - x", [20], spec=spec)
        # 2.0^3 - 2.0 = 6.0 at scale 3: 6000
        assert result.to_unscaled() == [6000]

    def test_power_in_sql(self):
        from repro.engine import Database

        db = Database()
        db.create_table("t", {"v": "DECIMAL(4, 2)"}, rows=[("1.50",), ("-2.00",)])
        result = db.execute("SELECT POWER(v, 3) FROM t")
        assert [str(x) for (x,) in result.rows] == ["3.375000", "-8.000000"]
