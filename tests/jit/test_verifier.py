"""Tests for the kernel IR verifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, compile_expression
from repro.core.jit.verifier import verify_kernel
from repro.errors import CodegenError

SCHEMA = {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)}


def valid_kernel():
    return compile_expression("a + b * 2", SCHEMA).kernel


class TestAcceptsGeneratedKernels:
    @pytest.mark.parametrize(
        "expression",
        ["a + b", "a - b", "a * b", "a / b", "-a + 1.5", "a + b + a * (b - 2)"],
    )
    def test_generated_kernels_verify(self, expression):
        kernel = compile_expression(expression, SCHEMA).kernel
        verify_kernel(kernel)  # must not raise

    def test_modulo_kernel(self):
        schema = {"x": DecimalSpec(18, 0), "n": DecimalSpec(18, 0)}
        verify_kernel(compile_expression("x * x % n", schema).kernel)

    @given(st.sampled_from(["a+b", "a*b+1", "(a-b)*(a+b)", "a/b+a"]))
    @settings(max_examples=10, deadline=None)
    def test_option_variants_verify(self, expression):
        for options in (
            JitOptions(),
            JitOptions(alignment_scheduling=False),
            JitOptions(subexpression_elimination=True),
            JitOptions(constant_construction=False, constant_alignment=False),
        ):
            verify_kernel(compile_expression(expression, SCHEMA, options).kernel)


class TestRejectsBrokenKernels:
    def test_undefined_register(self):
        kernel = valid_kernel()
        kernel.instructions.insert(
            0, ir.AddOp(99, DecimalSpec(4, 0), 50, 51)
        )
        with pytest.raises(CodegenError, match="undefined register"):
            verify_kernel(kernel)

    def test_unaligned_addition(self):
        spec_a = DecimalSpec(6, 2)
        spec_b = DecimalSpec(6, 1)
        kernel = ir.KernelIR(
            name="bad",
            expression_sql="a + b",
            instructions=[
                ir.LoadColumn(0, spec_a, "a"),
                ir.LoadColumn(1, spec_b, "b"),
                ir.AddOp(2, DecimalSpec(7, 2), 0, 1),  # b never aligned
                ir.StoreResult(2, DecimalSpec(7, 2), 2),
            ],
            input_columns={"a": spec_a, "b": spec_b},
            result_spec=DecimalSpec(7, 2),
            register_words=3,
        )
        with pytest.raises(CodegenError, match="not scale-aligned"):
            verify_kernel(kernel)

    def test_missing_store(self):
        kernel = valid_kernel()
        kernel.instructions = [
            i for i in kernel.instructions if not isinstance(i, ir.StoreResult)
        ]
        with pytest.raises(CodegenError, match="exactly one result"):
            verify_kernel(kernel)

    def test_wrong_align_exponent(self):
        spec = DecimalSpec(6, 1)
        kernel = ir.KernelIR(
            name="bad",
            expression_sql="a",
            instructions=[
                ir.LoadColumn(0, spec, "a"),
                ir.Align(1, DecimalSpec(9, 3), 0, 1),  # +1 but scale jumps 2
                ir.StoreResult(1, DecimalSpec(9, 3), 1),
            ],
            input_columns={"a": spec},
            result_spec=DecimalSpec(9, 3),
            register_words=3,
        )
        with pytest.raises(CodegenError, match="Align scale mismatch"):
            verify_kernel(kernel)

    def test_overflowing_constant(self):
        kernel = ir.KernelIR(
            name="bad",
            expression_sql="9999",
            instructions=[
                ir.LoadConst(0, DecimalSpec(2, 0), False, 9999),
                ir.StoreResult(0, DecimalSpec(2, 0), 0),
            ],
            input_columns={},
            result_spec=DecimalSpec(2, 0),
            register_words=1,
        )
        with pytest.raises(CodegenError, match="does not fit"):
            verify_kernel(kernel)

    def test_fractional_modulo(self):
        spec = DecimalSpec(6, 1)
        kernel = ir.KernelIR(
            name="bad",
            expression_sql="a % a",
            instructions=[
                ir.LoadColumn(0, spec, "a"),
                ir.ModOp(1, DecimalSpec(6, 0), 0, 0),
                ir.StoreResult(1, DecimalSpec(6, 0), 1),
            ],
            input_columns={"a": spec},
            result_spec=DecimalSpec(6, 0),
            register_words=2,
        )
        with pytest.raises(CodegenError, match="integer"):
            verify_kernel(kernel)

    def test_store_spec_mismatch(self):
        kernel = valid_kernel()
        kernel.result_spec = DecimalSpec(30, 5)
        with pytest.raises(CodegenError, match="result spec"):
            verify_kernel(kernel)


class TestCollectAllFindings:
    def multi_problem_kernel(self):
        spec = DecimalSpec(6, 1)
        return ir.KernelIR(
            name="bad",
            expression_sql="<multi>",
            instructions=[
                ir.LoadConst(0, DecimalSpec(2, 0), False, 9999),  # does not fit
                ir.LoadColumn(1, spec, "ghost"),  # column not in input_columns
                ir.NegOp(2, spec, 7),  # register 7 never defined
                ir.StoreResult(2, spec, 2),
            ],
            input_columns={"a": spec},
            result_spec=spec,
            register_words=4,
        )

    def test_non_strict_collects_every_finding(self):
        findings = verify_kernel(self.multi_problem_kernel(), strict=False)
        rules = {finding.rule for finding in findings}
        assert {"STRUCT001", "STRUCT002", "STRUCT003"} <= rules
        assert all(finding.severity.name == "ERROR" for finding in findings)

    def test_strict_raises_the_first_finding(self):
        kernel = self.multi_problem_kernel()
        first = verify_kernel(kernel, strict=False)[0]
        with pytest.raises(CodegenError) as excinfo:
            verify_kernel(kernel)
        assert str(excinfo.value) == first.message

    def test_valid_kernel_returns_no_findings(self):
        assert verify_kernel(valid_kernel(), strict=False) == []
