"""IR-level tests: constant-folding identities and n-ary sum scheduling.

These pin the *shape* of the emitted kernel IR, not just its results: the
identities must vanish before emission and the alignment scheduler must
order n-ary sums so the running scale climbs monotonically.
"""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.core.jit.pipeline import JitOptions, compile_expression

SCHEMA = {"a": DecimalSpec(10, 2), "b": DecimalSpec(8, 1)}


class TestConstantFoldingIdentities:
    @pytest.mark.parametrize("expression", ["0 + a", "a + 0", "1 * a", "a * 1", "+a"])
    def test_identity_collapses_to_bare_column(self, expression):
        compiled = compile_expression(expression, SCHEMA)
        assert compiled.tree.to_sql() == "a"
        assert [type(i).__name__ for i in compiled.kernel.instructions] == [
            "LoadColumn",
            "StoreResult",
        ]

    def test_identity_result_spec_matches_bare_column(self):
        folded = compile_expression("1 * a", SCHEMA)
        bare = compile_expression("a", SCHEMA)
        assert folded.kernel.result_spec == bare.kernel.result_spec

    def test_constant_subexpressions_fold_to_one_load(self):
        compiled = compile_expression("a + 2 * 3 + 4", SCHEMA)
        assert compiled.kernel.count(ir.MulOp) == 0
        # 2*3+4 folds into a single pre-aligned constant.
        assert compiled.kernel.count(ir.LoadConst) == 1

    def test_folding_keeps_zero_elimination_sound_for_subtraction(self):
        compiled = compile_expression("a - 0", SCHEMA)
        assert compiled.kernel.count(ir.SubOp) == 0


class TestNarySumScheduling:
    SCALES = {"a": DecimalSpec(8, 0), "b": DecimalSpec(8, 0), "c": DecimalSpec(8, 4)}

    def test_scheduler_minimises_alignments(self):
        scheduled = compile_expression("a + c + b", self.SCALES)
        unscheduled = compile_expression(
            "a + c + b", self.SCALES, JitOptions(alignment_scheduling=False)
        )
        # Sorted order (a, b, c) aligns once: the two scale-0 terms add
        # first, then the partial sum aligns up to c's scale.  Source
        # order (a, c, b) aligns a up immediately and then b as well.
        assert scheduled.kernel.alignment_ops() == 1
        assert unscheduled.kernel.alignment_ops() == 2

    def test_scheduled_terms_climb_by_effective_scale(self):
        compiled = compile_expression("c + a + b", self.SCALES)
        loads = [
            i for i in compiled.kernel.instructions if isinstance(i, ir.LoadColumn)
        ]
        assert [load.spec.scale for load in loads] == sorted(
            load.spec.scale for load in loads
        )

    def test_scheduling_preserves_instruction_count_for_uniform_scales(self):
        uniform = {name: DecimalSpec(8, 2) for name in ("a", "b", "c")}
        scheduled = compile_expression("a + b + c", uniform)
        unscheduled = compile_expression(
            "a + b + c", uniform, JitOptions(alignment_scheduling=False)
        )
        assert len(scheduled.kernel.instructions) == len(unscheduled.kernel.instructions)
        assert scheduled.kernel.alignment_ops() == 0
