"""Property test: JIT optimisations never change results.

Hypothesis generates random expression trees over random schemas and random
column data; the kernel compiled with *all* optimisations enabled must
produce bit-identical results to the kernel compiled with *none* -- the
strongest correctness invariant the optimiser has.

Division/modulo are excluded from the random grammar because their results
legitimately depend on association order under the section III-B3
truncation rules (the optimiser never reassociates them, but random
parenthesisation interacts with folding of '/' by exact constants);
targeted division tests live in test_codegen/test_executor.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import execute

COLUMNS = ("a", "b", "c")


@st.composite
def schemas(draw):
    schema = {}
    for name in COLUMNS:
        precision = draw(st.integers(min_value=2, max_value=24))
        scale = draw(st.integers(min_value=0, max_value=min(precision, 12)))
        schema[name] = DecimalSpec(precision, scale)
    return schema


@st.composite
def expressions(draw, depth=0):
    """A random +/-/* expression over columns and literals."""
    if depth >= 3 or draw(st.booleans()) and depth > 0:
        if draw(st.integers(min_value=0, max_value=2)) == 0:
            whole = draw(st.integers(min_value=0, max_value=999))
            frac = draw(st.integers(min_value=0, max_value=99))
            return f"{whole}.{frac:02d}" if draw(st.booleans()) else str(whole)
        return draw(st.sampled_from(COLUMNS))
    op = draw(st.sampled_from(["+", "-", "*", "+", "-"]))  # bias to +/-
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


ALL_ON = JitOptions()
ALL_OFF = JitOptions(
    alignment_scheduling=False,
    constant_folding=False,
    constant_alignment=False,
    constant_construction=False,
)
VARIANTS = [
    ALL_OFF,
    JitOptions(alignment_scheduling=False),
    JitOptions(constant_folding=False, constant_alignment=False),
    JitOptions(constant_construction=False, constant_alignment=False),
    JitOptions(tpi=8),
]


class TestOptimizerEquivalence:
    @given(
        schema=schemas(),
        expression=expressions(),
        rows=st.lists(
            st.tuples(
                st.integers(min_value=-(10**12), max_value=10**12),
                st.integers(min_value=-(10**12), max_value=10**12),
                st.integers(min_value=-(10**12), max_value=10**12),
            ),
            min_size=1,
            max_size=6,
        ),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_all_optimisations_preserve_value(self, schema, expression, rows, data):
        columns = {}
        values = {}
        for index, name in enumerate(COLUMNS):
            spec = schema[name]
            column_values = [row[index] % (spec.max_unscaled + 1) for row in rows]
            values[name] = column_values
            columns[name] = DecimalVector.from_unscaled(column_values, spec).to_compact()

        try:
            reference = compile_expression(expression, schema, ALL_ON)
        except Exception:
            pytest.skip("degenerate random expression")
        reference_run = execute(
            reference.kernel,
            {n: columns[n] for n in reference.kernel.input_columns},
            len(rows),
        )
        reference_fractions = [
            Fraction(u, 10**reference_run.result.spec.scale)
            for u in reference_run.result.to_unscaled()
        ]

        for options in VARIANTS:
            compiled = compile_expression(expression, schema, options)
            run = execute(
                compiled.kernel,
                {n: columns[n] for n in compiled.kernel.input_columns},
                len(rows),
            )
            fractions = [
                Fraction(u, 10**run.result.spec.scale) for u in run.result.to_unscaled()
            ]
            assert fractions == reference_fractions, (
                f"options {options} changed results for {expression!r}"
            )

    @given(schema=schemas(), expression=expressions())
    @settings(max_examples=60, deadline=None)
    def test_optimised_never_has_more_alignments(self, schema, expression):
        try:
            compiled = compile_expression(expression, schema, ALL_ON)
        except Exception:
            pytest.skip("degenerate random expression")
        assert compiled.alignments_after <= compiled.alignments_before

    @given(schema=schemas(), expression=expressions())
    @settings(max_examples=60, deadline=None)
    def test_exact_rational_oracle(self, schema, expression):
        """The fully-optimised kernel equals exact rational evaluation.

        +, - and * never truncate under the inference rules, so the kernel
        result must equal the exact Fraction value of the expression.
        """
        try:
            compiled = compile_expression(expression, schema, ALL_ON)
        except Exception:
            pytest.skip("degenerate random expression")
        values = {name: [spec.max_unscaled // 3] for name, spec in schema.items()}
        columns = {
            name: DecimalVector.from_unscaled(values[name], schema[name]).to_compact()
            for name in schema
        }
        run = execute(
            compiled.kernel, {n: columns[n] for n in compiled.kernel.input_columns}, 1
        )
        got = Fraction(run.result.to_unscaled()[0], 10**run.result.spec.scale)

        import re

        text = expression
        for name in COLUMNS:
            exact = Fraction(values[name][0], 10 ** schema[name].scale)
            text = re.sub(rf"\b{name}\b", f"Fraction({exact.numerator},{exact.denominator})", text)
        text = re.sub(r"(\d+\.\d+)", lambda m: f"Fraction('{m.group(1)}')", text)
        expected = eval(text, {"Fraction": Fraction})  # noqa: S307 - test-local
        assert got == expected
